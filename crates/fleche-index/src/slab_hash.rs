//! A SlabHash-style bucketed hash index.
//!
//! Models the GPU hash index the paper builds flat cache on (SlabHash,
//! Ashkiani et al., IPDPS '18): each bucket is a linked list of warp-wide
//! *slabs* of 32 slots, so one warp inspects a whole slab with a single
//! coalesced read. Each slot carries a logical timestamp that doubles as
//! the approximate-LRU age and as a version for read/write conflict
//! detection, exactly as flat cache's metadata-minimization argument
//! requires (no per-entry size, no extra lock words).
//!
//! The structure is functionally exact; every operation returns a
//! [`ProbeStats`] describing the traffic a warp-cooperative kernel doing
//! the same walk would generate.

use crate::instrument::ProbeStats;
use crate::loc::PackedLoc;

/// Slots per slab — one GPU warp inspects one slab per round.
pub const SLAB_WIDTH: usize = 32;

/// On-device bytes per slab: 32 keys (8 B) + 32 locs (8 B) + 32 stamps
/// (4 B) + next pointer & occupancy word.
pub const SLAB_BYTES: u64 = (SLAB_WIDTH as u64) * (8 + 8 + 4) + 8;

#[derive(Clone, Debug)]
struct Slab {
    keys: [u64; SLAB_WIDTH],
    locs: [PackedLoc; SLAB_WIDTH],
    stamps: [u32; SLAB_WIDTH],
    occupied: u32,
}

impl Slab {
    fn empty() -> Slab {
        Slab {
            keys: [0; SLAB_WIDTH],
            locs: [PackedLoc::from(crate::loc::Loc::Hbm { class: 0, slot: 0 }); SLAB_WIDTH],
            stamps: [0; SLAB_WIDTH],
            occupied: 0,
        }
    }

    /// Mask-based key scan: iterate only the *set* bits of `occupied`
    /// via `trailing_zeros` (clearing each visited bit with `m &= m-1`),
    /// compare that slot's key, and return on the first hit. Same
    /// (lowest-index) result as the old per-bit scan, but unoccupied
    /// slots are never examined and stale keys in them are skipped by
    /// construction, not by a per-slot flag test.
    ///
    /// This early-exit bit walk beats both the old scan (no per-slot
    /// `occupied & (1<<i)` test) and a whole-slab SIMD `match_mask`
    /// (measured: the hit is usually found within a few set bits, so a
    /// full 32-wide compare — let alone a runtime-dispatch branch and a
    /// non-inlinable `#[target_feature]` call — does strictly more work
    /// per probe). The 32-wide `fleche_simd::match_mask` ballot remains
    /// the right tool where a full mask is genuinely needed, but a probe
    /// only needs the first hit.
    fn find(&self, key: u64) -> Option<usize> {
        let mut m = self.occupied;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            if self.keys[i] == key {
                return Some(i);
            }
            m &= m - 1;
        }
        None
    }

    /// Lowest unoccupied slot via one bit-not + `trailing_zeros`.
    fn first_free(&self) -> Option<usize> {
        if self.occupied == u32::MAX {
            None
        } else {
            Some((!self.occupied).trailing_zeros() as usize)
        }
    }
}

/// Result of an insert.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InsertOutcome {
    /// Key was new; a slot was claimed.
    Inserted,
    /// Key existed; its location and stamp were updated.
    Updated {
        /// The location the slot held before the update.
        previous: PackedLoc,
    },
}

/// An entry yielded by a full-table scan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScanEntry {
    /// The flat key.
    pub key: u64,
    /// Where its value lives.
    pub loc: PackedLoc,
    /// Last-touch logical timestamp.
    pub stamp: u32,
}

/// The slab-list hash index.
///
/// ```
/// use fleche_index::{Loc, SlabHash};
///
/// let mut index = SlabHash::for_capacity(1_000);
/// index.insert(42, Loc::Hbm { class: 0, slot: 7 }.pack(), 1);
/// let (found, stats) = index.lookup(42, Some(2));
/// assert_eq!(found.map(|p| p.unpack()), Some(Loc::Hbm { class: 0, slot: 7 }));
/// assert_eq!(stats.hits, 1);
/// assert_eq!(index.stamp_of(42), Some(2)); // LRU stamp was bumped
/// ```
#[derive(Clone, Debug)]
pub struct SlabHash {
    buckets: Vec<Vec<Slab>>,
    len: usize,
    /// Multiplicative hash seed; varied in tests to exercise collisions.
    seed: u64,
}

impl SlabHash {
    /// Creates an index with `buckets` bucket chains (rounded up to a
    /// power of two, minimum 1).
    pub fn new(buckets: usize) -> SlabHash {
        SlabHash::with_seed(buckets, 0x9E37_79B9_7F4A_7C15)
    }

    /// Like [`SlabHash::new`] with an explicit hash seed.
    pub fn with_seed(buckets: usize, seed: u64) -> SlabHash {
        let n = buckets.max(1).next_power_of_two();
        SlabHash {
            buckets: vec![Vec::new(); n],
            len: 0,
            seed,
        }
    }

    /// Sizes an index for `capacity` entries at a target load factor of
    /// ~75% of one slab per bucket.
    pub fn for_capacity(capacity: usize) -> SlabHash {
        let per_bucket = (SLAB_WIDTH * 3) / 4; // leave slack before chaining
        SlabHash::new(capacity.div_ceil(per_bucket.max(1)))
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bucket chains.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Device bytes consumed by slab storage right now.
    pub fn device_bytes(&self) -> u64 {
        let slabs: u64 = self.buckets.iter().map(|b| b.len() as u64).sum();
        slabs * SLAB_BYTES + (self.buckets.len() as u64) * 8
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> usize {
        // Multiplicative Fibonacci hashing; buckets.len() is a power of two.
        let h = key.wrapping_mul(self.seed);
        (h >> 32) as usize & (self.buckets.len() - 1)
    }

    /// Looks up `key`. On a hit, when `touch` is set the slot's timestamp
    /// is bumped to it (the approximate-LRU access path).
    pub fn lookup(&mut self, key: u64, touch: Option<u32>) -> (Option<PackedLoc>, ProbeStats) {
        let b = self.bucket_of(key);
        self.lookup_in_bucket(b, key, touch)
    }

    /// The per-key probe walk, shared by [`SlabHash::lookup`] and
    /// [`SlabHash::lookup_batch`] so both produce identical per-key
    /// [`ProbeStats`] (simulated GPU traffic accounting must not depend
    /// on which entry point served a key).
    fn lookup_in_bucket(
        &mut self,
        b: usize,
        key: u64,
        touch: Option<u32>,
    ) -> (Option<PackedLoc>, ProbeStats) {
        let mut stats = ProbeStats::new();
        stats.bytes_touched += 8; // bucket head pointer
        for (depth, slab) in self.buckets[b].iter_mut().enumerate() {
            stats.slabs_visited += 1;
            stats.bytes_touched += SLAB_BYTES;
            if let Some(i) = slab.find(key) {
                if let Some(now) = touch {
                    slab.stamps[i] = now;
                    stats.atomics += 1;
                }
                stats.max_chain = stats.max_chain.max(depth as u32 + 1);
                stats.hits += 1;
                return (Some(slab.locs[i]), stats);
            }
        }
        stats.max_chain = stats.max_chain.max(self.buckets[b].len() as u32);
        stats.misses += 1;
        (None, stats)
    }

    /// Batched lookup: precomputes every key's bucket, then probes in
    /// bucket order so consecutive probes share chain cache lines (the
    /// host analogue of the paper's warp-level batching). Results and
    /// per-key [`ProbeStats`] are returned in input order and are
    /// identical to calling [`SlabHash::lookup`] per key in input order
    /// — including timestamp bumps, because duplicate keys touch the
    /// same slot with the same `touch` value regardless of visit order.
    pub fn lookup_batch(
        &mut self,
        keys: &[u64],
        touch: Option<u32>,
    ) -> Vec<(Option<PackedLoc>, ProbeStats)> {
        let nb = self.buckets.len();
        let bs: Vec<u32> = keys.iter().map(|&k| self.bucket_of(k) as u32).collect();
        // Group probes by bucket, keeping input order within a bucket.
        // Dense batches use a counting sort (three linear passes); sparse
        // batches — where a histogram over every bucket would dominate —
        // fall back to a comparison sort with the position tiebreak.
        // Both produce the same (bucket asc, position asc) visit order.
        let order: Vec<u32> = if keys.len() >= nb / 8 {
            let mut starts = vec![0u32; nb + 1];
            for &b in &bs {
                starts[b as usize + 1] += 1;
            }
            for i in 0..nb {
                starts[i + 1] += starts[i];
            }
            let mut order = vec![0u32; keys.len()];
            for (pos, &b) in bs.iter().enumerate() {
                order[starts[b as usize] as usize] = pos as u32;
                starts[b as usize] += 1;
            }
            order
        } else {
            let mut order: Vec<u32> = (0..keys.len() as u32).collect();
            order.sort_unstable_by_key(|&pos| (bs[pos as usize], pos));
            order
        };
        let mut out = vec![(None, ProbeStats::new()); keys.len()];
        for &pos in &order {
            let pos = pos as usize;
            out[pos] = self.lookup_in_bucket(bs[pos] as usize, keys[pos], touch);
        }
        out
    }

    /// Read-only lookup (no timestamp bump, no instrumentation) for tests
    /// and oracles.
    pub fn peek(&self, key: u64) -> Option<PackedLoc> {
        let b = self.bucket_of(key);
        self.buckets[b]
            .iter()
            .find_map(|s| s.find(key).map(|i| s.locs[i]))
    }

    /// Returns the stamp stored for `key`, if present.
    pub fn stamp_of(&self, key: u64) -> Option<u32> {
        let b = self.bucket_of(key);
        self.buckets[b]
            .iter()
            .find_map(|s| s.find(key).map(|i| s.stamps[i]))
    }

    /// Inserts or updates `key -> loc`, stamping the slot with `stamp`.
    pub fn insert(&mut self, key: u64, loc: PackedLoc, stamp: u32) -> (InsertOutcome, ProbeStats) {
        let b = self.bucket_of(key);
        let mut stats = ProbeStats::new();
        stats.bytes_touched += 8; // bucket head pointer
        let chain = &mut self.buckets[b];

        // Pass 1: existing key or first free slot.
        let mut free: Option<(usize, usize)> = None;
        for (depth, slab) in chain.iter_mut().enumerate() {
            stats.slabs_visited += 1;
            stats.bytes_touched += SLAB_BYTES;
            stats.max_chain = stats.max_chain.max(depth as u32 + 1);
            if let Some(i) = slab.find(key) {
                let previous = slab.locs[i];
                slab.locs[i] = loc;
                slab.stamps[i] = stamp;
                stats.atomics += 1;
                stats.hits += 1;
                return (InsertOutcome::Updated { previous }, stats);
            }
            if free.is_none() {
                if let Some(i) = slab.first_free() {
                    free = Some((depth, i));
                }
            }
        }
        stats.misses += 1;

        let (depth, i) = match free {
            Some(pos) => pos,
            None => {
                // Allocate and link a fresh slab (one atomic to swing the
                // next pointer).
                chain.push(Slab::empty());
                stats.atomics += 1;
                stats.bytes_touched += SLAB_BYTES;
                (chain.len() - 1, 0)
            }
        };
        let slab = &mut chain[depth];
        slab.keys[i] = key;
        slab.locs[i] = loc;
        slab.stamps[i] = stamp;
        slab.occupied |= 1 << i;
        stats.atomics += 1; // slot claim CAS
        self.len += 1;
        (InsertOutcome::Inserted, stats)
    }

    /// Removes `key`, returning its location if it was present.
    pub fn remove(&mut self, key: u64) -> (Option<PackedLoc>, ProbeStats) {
        let b = self.bucket_of(key);
        let mut stats = ProbeStats::new();
        stats.bytes_touched += 8; // bucket head pointer
        for (depth, slab) in self.buckets[b].iter_mut().enumerate() {
            stats.slabs_visited += 1;
            stats.bytes_touched += SLAB_BYTES;
            stats.max_chain = stats.max_chain.max(depth as u32 + 1);
            if let Some(i) = slab.find(key) {
                slab.occupied &= !(1 << i);
                stats.atomics += 1;
                stats.hits += 1;
                self.len -= 1;
                return (Some(slab.locs[i]), stats);
            }
        }
        stats.misses += 1;
        (None, stats)
    }

    /// Drops every entry and slab chain, keeping the bucket array. The
    /// recovery path uses this after a device loss: chains were HBM
    /// contents and are gone, the bucket heads are re-initialized state.
    pub fn clear(&mut self) {
        for chain in &mut self.buckets {
            chain.clear();
        }
        self.len = 0;
    }

    /// Full-table scan in storage order (the eviction pass). The returned
    /// stats model one streaming kernel over all slabs.
    pub fn scan(&self) -> (Vec<ScanEntry>, ProbeStats) {
        let mut out = Vec::with_capacity(self.len);
        let mut stats = ProbeStats::new();
        for chain in &self.buckets {
            for slab in chain {
                stats.slabs_visited += 1;
                stats.bytes_touched += SLAB_BYTES;
                for i in 0..SLAB_WIDTH {
                    if slab.occupied & (1 << i) != 0 {
                        out.push(ScanEntry {
                            key: slab.keys[i],
                            loc: slab.locs[i],
                            stamp: slab.stamps[i],
                        });
                    }
                }
            }
        }
        (out, stats)
    }

    /// Samples up to `n` live entries by probing pseudo-random buckets
    /// (seeded by `seed`), the way a sampled-LRU eviction kernel would.
    /// Returns fewer than `n` when the table is sparse.
    pub fn sample_entries(&self, n: usize, seed: u64) -> (Vec<ScanEntry>, ProbeStats) {
        let mut out = Vec::with_capacity(n);
        let mut stats = ProbeStats::new();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        // Bounded probing: visiting 4n buckets is enough unless the table
        // is nearly empty.
        for _ in 0..n.saturating_mul(4).max(8) {
            if out.len() >= n {
                break;
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let b = (state as usize) & (self.buckets.len() - 1);
            for slab in &self.buckets[b] {
                stats.slabs_visited += 1;
                stats.bytes_touched += SLAB_BYTES;
                for i in 0..SLAB_WIDTH {
                    if slab.occupied & (1 << i) != 0 && out.len() < n {
                        out.push(ScanEntry {
                            key: slab.keys[i],
                            loc: slab.locs[i],
                            stamp: slab.stamps[i],
                        });
                    }
                }
                if out.len() >= n {
                    break;
                }
            }
        }
        (out, stats)
    }

    /// Average chain length in slabs over non-empty buckets (diagnostic).
    pub fn mean_chain_len(&self) -> f64 {
        let non_empty: Vec<_> = self.buckets.iter().filter(|c| !c.is_empty()).collect();
        if non_empty.is_empty() {
            return 0.0;
        }
        non_empty.iter().map(|c| c.len()).sum::<usize>() as f64 / non_empty.len() as f64
    }
}

impl crate::index_trait::GpuIndex for SlabHash {
    fn lookup(&mut self, key: u64, touch: Option<u32>) -> (Option<PackedLoc>, ProbeStats) {
        SlabHash::lookup(self, key, touch)
    }

    fn lookup_batch(
        &mut self,
        keys: &[u64],
        touch: Option<u32>,
    ) -> Vec<(Option<PackedLoc>, ProbeStats)> {
        SlabHash::lookup_batch(self, keys, touch)
    }

    fn peek(&self, key: u64) -> Option<PackedLoc> {
        SlabHash::peek(self, key)
    }

    fn insert(
        &mut self,
        key: u64,
        loc: PackedLoc,
        stamp: u32,
    ) -> (crate::index_trait::IndexInsert, ProbeStats) {
        let (out, stats) = SlabHash::insert(self, key, loc, stamp);
        let out = match out {
            InsertOutcome::Inserted => crate::index_trait::IndexInsert::Inserted,
            InsertOutcome::Updated { previous } => {
                crate::index_trait::IndexInsert::Updated { previous }
            }
        };
        (out, stats)
    }

    fn remove(&mut self, key: u64) -> (Option<PackedLoc>, ProbeStats) {
        SlabHash::remove(self, key)
    }

    fn clear(&mut self) {
        SlabHash::clear(self)
    }

    fn scan(&self) -> (Vec<ScanEntry>, ProbeStats) {
        SlabHash::scan(self)
    }

    fn sample_entries(&self, n: usize, seed: u64) -> (Vec<ScanEntry>, ProbeStats) {
        SlabHash::sample_entries(self, n, seed)
    }

    fn len(&self) -> usize {
        SlabHash::len(self)
    }

    fn device_bytes(&self) -> u64 {
        SlabHash::device_bytes(self)
    }

    fn bucket_count(&self) -> usize {
        SlabHash::bucket_count(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loc::Loc;

    fn hbm(slot: u32) -> PackedLoc {
        Loc::Hbm { class: 0, slot }.pack()
    }

    #[test]
    fn insert_lookup_remove_round_trip() {
        let mut h = SlabHash::new(8);
        assert!(h.is_empty());
        let (out, _) = h.insert(42, hbm(7), 1);
        assert_eq!(out, InsertOutcome::Inserted);
        assert_eq!(h.len(), 1);
        let (found, stats) = h.lookup(42, None);
        assert_eq!(found, Some(hbm(7)));
        assert_eq!(stats.hits, 1);
        let (removed, _) = h.remove(42);
        assert_eq!(removed, Some(hbm(7)));
        assert!(h.is_empty());
        let (gone, stats) = h.lookup(42, None);
        assert_eq!(gone, None);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn update_replaces_and_reports_previous() {
        let mut h = SlabHash::new(8);
        h.insert(1, hbm(10), 1);
        let (out, _) = h.insert(1, hbm(20), 2);
        assert_eq!(out, InsertOutcome::Updated { previous: hbm(10) });
        assert_eq!(h.len(), 1);
        assert_eq!(h.peek(1), Some(hbm(20)));
        assert_eq!(h.stamp_of(1), Some(2));
    }

    #[test]
    fn touch_bumps_timestamp() {
        let mut h = SlabHash::new(8);
        h.insert(5, hbm(1), 10);
        let _ = h.lookup(5, Some(99));
        assert_eq!(h.stamp_of(5), Some(99));
        let _ = h.lookup(5, None);
        assert_eq!(h.stamp_of(5), Some(99));
    }

    #[test]
    fn chains_grow_under_collisions() {
        // One bucket forces every key into the same chain.
        let mut h = SlabHash::new(1);
        for k in 1..=(SLAB_WIDTH as u64 * 3) {
            h.insert(k, hbm(k as u32), 0);
        }
        assert_eq!(h.len(), SLAB_WIDTH * 3);
        assert!(h.mean_chain_len() >= 3.0);
        // Deep keys report long chains.
        let (found, stats) = h.lookup(SLAB_WIDTH as u64 * 3, None);
        assert!(found.is_some());
        assert!(stats.max_chain >= 3);
    }

    #[test]
    fn removed_slots_are_reused() {
        let mut h = SlabHash::new(1);
        for k in 1..=SLAB_WIDTH as u64 {
            h.insert(k, hbm(0), 0);
        }
        let slabs_before = h.device_bytes();
        h.remove(3);
        h.insert(1000, hbm(0), 0);
        assert_eq!(h.device_bytes(), slabs_before, "free slot should be reused");
        assert_eq!(h.len(), SLAB_WIDTH);
    }

    #[test]
    fn scan_returns_every_live_entry() {
        let mut h = SlabHash::new(16);
        for k in 0..100u64 {
            h.insert(k + 1, hbm(k as u32), k as u32);
        }
        for k in 0..50u64 {
            h.remove(k * 2 + 1);
        }
        let (entries, stats) = h.scan();
        assert_eq!(entries.len(), h.len());
        assert!(stats.slabs_visited > 0);
        let mut keys: Vec<u64> = entries.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        let expect: Vec<u64> = (0..100u64).map(|k| k + 1).filter(|k| k % 2 == 0).collect();
        assert_eq!(keys, expect);
    }

    #[test]
    fn capacity_sizing_keeps_chains_short() {
        let n = 10_000;
        let mut h = SlabHash::for_capacity(n);
        for k in 0..n as u64 {
            h.insert(k.wrapping_mul(0xDEAD_BEEF_1234_5677) | 1, hbm(0), 0);
        }
        assert!(h.mean_chain_len() < 2.0, "chains: {}", h.mean_chain_len());
    }

    #[test]
    fn sampling_returns_live_entries() {
        let mut h = SlabHash::new(64);
        for k in 1..=500u64 {
            h.insert(k, hbm(k as u32), k as u32);
        }
        let (sample, stats) = h.sample_entries(16, 42);
        assert_eq!(sample.len(), 16);
        assert!(stats.slabs_visited > 0);
        for e in &sample {
            assert_eq!(h.peek(e.key), Some(e.loc));
        }
        // Different seeds sample different entries (usually).
        let (other, _) = h.sample_entries(16, 43);
        assert_ne!(
            sample.iter().map(|e| e.key).collect::<Vec<_>>(),
            other.iter().map(|e| e.key).collect::<Vec<_>>()
        );
    }

    #[test]
    fn sampling_empty_table_is_empty() {
        let h = SlabHash::new(8);
        let (sample, _) = h.sample_entries(4, 1);
        assert!(sample.is_empty());
    }

    #[test]
    fn trait_conformance() {
        use crate::index_trait::conformance;
        let mut idx = SlabHash::new(16);
        conformance::check_map_contract(&mut idx);
        let mut idx = SlabHash::for_capacity(1_000);
        conformance::check_bulk_and_scan(&mut idx, 1_000);
    }

    #[test]
    fn mask_scans_match_bit_by_bit_reference() {
        // The pre-mask implementations, kept as the oracle.
        fn find_ref(s: &Slab, key: u64) -> Option<usize> {
            (0..SLAB_WIDTH).find(|&i| s.occupied & (1 << i) != 0 && s.keys[i] == key)
        }
        fn first_free_ref(s: &Slab) -> Option<usize> {
            (0..SLAB_WIDTH).find(|&i| s.occupied & (1 << i) == 0)
        }
        let mut slab = Slab::empty();
        // Stale duplicate keys in unoccupied slots must stay invisible.
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        for round in 0..200 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let i = (state as usize) % SLAB_WIDTH;
            slab.keys[i] = state % 7;
            if round % 3 == 0 {
                slab.occupied ^= 1 << i;
            }
            for key in 0..7u64 {
                assert_eq!(slab.find(key), find_ref(&slab, key), "round {round}");
            }
            assert_eq!(slab.first_free(), first_free_ref(&slab), "round {round}");
        }
        slab.occupied = u32::MAX;
        assert_eq!(slab.first_free(), first_free_ref(&slab));
    }

    #[test]
    fn batch_lookup_matches_sequential_including_stats() {
        let mut a = SlabHash::with_seed(8, 12345);
        let mut b = a.clone();
        for k in 0..300u64 {
            a.insert(k * 3, hbm(k as u32), k as u32);
            b.insert(k * 3, hbm(k as u32), k as u32);
        }
        // Mixed hits/misses, duplicates included.
        let keys: Vec<u64> = (0..200u64).map(|i| (i * 7) % 450).collect();
        let batch = a.lookup_batch(&keys, Some(77));
        let seq: Vec<_> = keys.iter().map(|&k| b.lookup(k, Some(77))).collect();
        assert_eq!(batch, seq);
        for &k in &keys {
            assert_eq!(a.stamp_of(k), b.stamp_of(k), "key {k}");
        }
    }

    #[test]
    fn stats_count_slab_traffic() {
        let mut h = SlabHash::new(4);
        let (_, s) = h.insert(9, hbm(0), 0);
        assert!(s.bytes_touched >= SLAB_BYTES);
        assert!(s.atomics >= 1);
    }
}
