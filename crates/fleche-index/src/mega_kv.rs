//! A MegaKV-style bucketed cuckoo hash index.
//!
//! Models the other GPU index family the paper names (MegaKV, Zhang et
//! al., VLDB '15): fixed buckets of 8 slots, two hash functions per key,
//! inserts resolved by bounded cuckoo displacement. Lookups touch at most
//! two buckets — a shorter, bounded probe chain than SlabHash's linked
//! slabs — at the price of insert-time kick-outs and a hard capacity
//! ceiling. When the kick budget runs out, the last displaced entry is
//! handed back to the caller ([`IndexInsert::Displaced`]); for a cache
//! that is just a forced eviction.

use crate::index_trait::{GpuIndex, IndexInsert};
use crate::instrument::ProbeStats;
use crate::loc::{Loc, PackedLoc};
use crate::slab_hash::ScanEntry;

/// Slots per bucket (one warp inspects a bucket in one coalesced read).
pub const BUCKET_WIDTH: usize = 8;

/// On-device bytes per bucket: 8 keys (8 B) + 8 locs (8 B) + 8 stamps
/// (4 B).
pub const BUCKET_BYTES: u64 = (BUCKET_WIDTH as u64) * (8 + 8 + 4);

/// Maximum cuckoo displacements before giving up on an insert.
const MAX_KICKS: usize = 32;

#[derive(Clone, Debug)]
struct Bucket {
    keys: [u64; BUCKET_WIDTH],
    locs: [PackedLoc; BUCKET_WIDTH],
    stamps: [u32; BUCKET_WIDTH],
    occupied: u8,
}

impl Bucket {
    fn empty() -> Bucket {
        Bucket {
            keys: [0; BUCKET_WIDTH],
            locs: [Loc::Hbm { class: 0, slot: 0 }.pack(); BUCKET_WIDTH],
            stamps: [0; BUCKET_WIDTH],
            occupied: 0,
        }
    }

    fn find(&self, key: u64) -> Option<usize> {
        (0..BUCKET_WIDTH).find(|&i| self.occupied & (1 << i) != 0 && self.keys[i] == key)
    }

    fn first_free(&self) -> Option<usize> {
        (0..BUCKET_WIDTH).find(|&i| self.occupied & (1 << i) == 0)
    }
}

/// The bucketed cuckoo index.
#[derive(Debug)]
pub struct MegaKv {
    buckets: Vec<Bucket>,
    len: usize,
    seed: u64,
}

impl MegaKv {
    /// Creates an index with `buckets` buckets (rounded up to a power of
    /// two, minimum 2 so the two hash functions can disagree).
    pub fn new(buckets: usize) -> MegaKv {
        let n = buckets.max(2).next_power_of_two();
        MegaKv {
            buckets: vec![Bucket::empty(); n],
            len: 0,
            seed: 0x94D0_49BB_1331_11EB,
        }
    }

    /// Sizes the index for `capacity` entries at ~75% target load (cuckoo
    /// tables degrade sharply beyond that).
    pub fn for_capacity(capacity: usize) -> MegaKv {
        let slots_needed = (capacity as f64 / 0.75).ceil() as usize;
        MegaKv::new(slots_needed.div_ceil(BUCKET_WIDTH))
    }

    #[inline]
    fn hash(&self, key: u64, which: u32) -> usize {
        let mut x = key ^ self.seed.rotate_left(which * 17);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        (x as usize) & (self.buckets.len() - 1)
    }

    fn alternate(&self, key: u64, current: usize) -> usize {
        let h0 = self.hash(key, 0);
        let h1 = self.hash(key, 1);
        if current == h0 {
            h1
        } else {
            h0
        }
    }
}

impl GpuIndex for MegaKv {
    fn lookup(&mut self, key: u64, touch: Option<u32>) -> (Option<PackedLoc>, ProbeStats) {
        let mut stats = ProbeStats::new();
        for which in 0..2u32 {
            let b = self.hash(key, which);
            stats.slabs_visited += 1;
            stats.bytes_touched += BUCKET_BYTES;
            stats.max_chain = stats.max_chain.max(which + 1);
            if let Some(i) = self.buckets[b].find(key) {
                if let Some(now) = touch {
                    self.buckets[b].stamps[i] = now;
                    stats.atomics += 1;
                }
                stats.hits += 1;
                return (Some(self.buckets[b].locs[i]), stats);
            }
        }
        stats.misses += 1;
        (None, stats)
    }

    fn peek(&self, key: u64) -> Option<PackedLoc> {
        for which in 0..2u32 {
            let b = self.hash(key, which);
            if let Some(i) = self.buckets[b].find(key) {
                return Some(self.buckets[b].locs[i]);
            }
        }
        None
    }

    fn insert(&mut self, key: u64, loc: PackedLoc, stamp: u32) -> (IndexInsert, ProbeStats) {
        let mut stats = ProbeStats::new();
        // Update in place if present.
        for which in 0..2u32 {
            let b = self.hash(key, which);
            stats.slabs_visited += 1;
            stats.bytes_touched += BUCKET_BYTES;
            if let Some(i) = self.buckets[b].find(key) {
                let previous = self.buckets[b].locs[i];
                self.buckets[b].locs[i] = loc;
                self.buckets[b].stamps[i] = stamp;
                stats.atomics += 1;
                stats.hits += 1;
                return (IndexInsert::Updated { previous }, stats);
            }
        }
        stats.misses += 1;
        // Place with bounded cuckoo displacement.
        let mut cur = ScanEntry { key, loc, stamp };
        let mut bucket = self.hash(cur.key, 0);
        for kick in 0..=MAX_KICKS {
            stats.slabs_visited += 1;
            stats.bytes_touched += BUCKET_BYTES;
            stats.max_chain = stats.max_chain.max(kick as u32 + 1);
            if let Some(i) = self.buckets[bucket].first_free() {
                self.buckets[bucket].keys[i] = cur.key;
                self.buckets[bucket].locs[i] = cur.loc;
                self.buckets[bucket].stamps[i] = cur.stamp;
                self.buckets[bucket].occupied |= 1 << i;
                stats.atomics += 1;
                self.len += 1;
                return (
                    if cur.key == key {
                        IndexInsert::Inserted
                    } else {
                        // The original key landed earlier; the chain ended
                        // by placing a displaced entry.
                        IndexInsert::Inserted
                    },
                    stats,
                );
            }
            // Displace the stalest entry of the full bucket.
            let i = (0..BUCKET_WIDTH)
                .min_by_key(|&i| self.buckets[bucket].stamps[i])
                .expect("bucket width > 0");
            let victim = ScanEntry {
                key: self.buckets[bucket].keys[i],
                loc: self.buckets[bucket].locs[i],
                stamp: self.buckets[bucket].stamps[i],
            };
            self.buckets[bucket].keys[i] = cur.key;
            self.buckets[bucket].locs[i] = cur.loc;
            self.buckets[bucket].stamps[i] = cur.stamp;
            stats.atomics += 2;
            cur = victim;
            bucket = self.alternate(cur.key, bucket);
        }
        // Kick budget exhausted: `cur` is some displaced victim that no
        // longer fits. The requested key itself was placed along the way.
        // (len unchanged: one in, one out.)
        (IndexInsert::Displaced { victim: cur }, stats)
    }

    fn remove(&mut self, key: u64) -> (Option<PackedLoc>, ProbeStats) {
        let mut stats = ProbeStats::new();
        for which in 0..2u32 {
            let b = self.hash(key, which);
            stats.slabs_visited += 1;
            stats.bytes_touched += BUCKET_BYTES;
            if let Some(i) = self.buckets[b].find(key) {
                self.buckets[b].occupied &= !(1 << i);
                stats.atomics += 1;
                stats.hits += 1;
                self.len -= 1;
                return (Some(self.buckets[b].locs[i]), stats);
            }
        }
        stats.misses += 1;
        (None, stats)
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            *b = Bucket::empty();
        }
        self.len = 0;
    }

    fn scan(&self) -> (Vec<ScanEntry>, ProbeStats) {
        let mut out = Vec::with_capacity(self.len);
        let mut stats = ProbeStats::new();
        for b in &self.buckets {
            stats.slabs_visited += 1;
            stats.bytes_touched += BUCKET_BYTES;
            for i in 0..BUCKET_WIDTH {
                if b.occupied & (1 << i) != 0 {
                    out.push(ScanEntry {
                        key: b.keys[i],
                        loc: b.locs[i],
                        stamp: b.stamps[i],
                    });
                }
            }
        }
        (out, stats)
    }

    fn sample_entries(&self, n: usize, seed: u64) -> (Vec<ScanEntry>, ProbeStats) {
        let mut out = Vec::with_capacity(n);
        let mut stats = ProbeStats::new();
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for _ in 0..n.saturating_mul(4).max(8) {
            if out.len() >= n {
                break;
            }
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let b = (state as usize) & (self.buckets.len() - 1);
            stats.slabs_visited += 1;
            stats.bytes_touched += BUCKET_BYTES;
            for i in 0..BUCKET_WIDTH {
                if self.buckets[b].occupied & (1 << i) != 0 && out.len() < n {
                    out.push(ScanEntry {
                        key: self.buckets[b].keys[i],
                        loc: self.buckets[b].locs[i],
                        stamp: self.buckets[b].stamps[i],
                    });
                }
            }
        }
        (out, stats)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn device_bytes(&self) -> u64 {
        self.buckets.len() as u64 * BUCKET_BYTES
    }

    fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index_trait::conformance;

    #[test]
    fn map_contract() {
        let mut idx = MegaKv::new(16);
        conformance::check_map_contract(&mut idx);
    }

    #[test]
    fn bulk_and_scan() {
        let mut idx = MegaKv::for_capacity(1_000);
        conformance::check_bulk_and_scan(&mut idx, 1_000);
    }

    #[test]
    fn lookup_touches_at_most_two_buckets() {
        let mut idx = MegaKv::for_capacity(10_000);
        for k in 1..=10_000u64 {
            idx.insert(
                k,
                Loc::Hbm {
                    class: 0,
                    slot: k as u32,
                }
                .pack(),
                0,
            );
        }
        for k in (1..=10_000u64).step_by(97) {
            let (found, stats) = idx.lookup(k, None);
            if found.is_some() {
                assert!(stats.slabs_visited <= 2, "cuckoo probes bounded");
                assert!(stats.max_chain <= 2);
            }
        }
    }

    #[test]
    fn overload_displaces_instead_of_looping() {
        // A tiny table overfilled: inserts must terminate and report
        // displacements, with len bounded by capacity.
        let mut idx = MegaKv::new(2); // 2 buckets = 16 slots
        let cap = idx.bucket_count() * BUCKET_WIDTH;
        let mut displaced = 0;
        for k in 1..=200u64 {
            match idx
                .insert(
                    k,
                    Loc::Hbm {
                        class: 0,
                        slot: k as u32,
                    }
                    .pack(),
                    k as u32,
                )
                .0
            {
                IndexInsert::Displaced { victim } => {
                    displaced += 1;
                    assert_ne!(victim.key, 0);
                }
                IndexInsert::Inserted | IndexInsert::Updated { .. } | IndexInsert::Rejected => {}
            }
        }
        assert!(idx.len() <= cap);
        assert!(displaced > 0, "overload must displace");
    }

    #[test]
    fn displacement_prefers_stale_entries() {
        let mut idx = MegaKv::new(2);
        // Fill completely with old stamps, then insert hot entries: the
        // displaced victims should be predominantly old.
        for k in 1..=16u64 {
            idx.insert(
                k,
                Loc::Hbm {
                    class: 0,
                    slot: k as u32,
                }
                .pack(),
                1,
            );
        }
        let mut victims = Vec::new();
        for k in 100..=110u64 {
            if let IndexInsert::Displaced { victim } =
                idx.insert(k, Loc::Hbm { class: 0, slot: 0 }.pack(), 100).0
            {
                victims.push(victim.stamp);
            }
        }
        assert!(!victims.is_empty());
        assert!(victims.iter().filter(|&&s| s == 1).count() * 2 >= victims.len());
    }

    #[test]
    fn device_bytes_are_fixed_at_construction() {
        let idx = MegaKv::new(64);
        let before = idx.device_bytes();
        let mut idx = idx;
        for k in 1..=100u64 {
            idx.insert(k, Loc::Hbm { class: 0, slot: 0 }.pack(), 0);
        }
        assert_eq!(idx.device_bytes(), before, "no dynamic growth");
    }
}
