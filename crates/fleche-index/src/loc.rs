//! Value locations stored in the GPU-resident index.
//!
//! A [`Loc`] is the 64-bit "pointer" a slot of the index maps a flat key to.
//! Following the paper's *unified index* technique, the least significant
//! bit distinguishes an HBM memory-pool slot from a CPU-DRAM resident
//! embedding: a tagged DRAM pointer lets the GPU-side index answer "where
//! does this missing key live" without a slow CPU-side hash lookup.

/// Where an embedding lives.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Loc {
    /// In the GPU memory pool: (size class, slot within the class).
    Hbm {
        /// Index of the pool size class (one per embedding dimension).
        class: u16,
        /// Slot number within the class.
        slot: u32,
    },
    /// In CPU DRAM: identified by the original (table, feature id) pair so
    /// the host-side store can be addressed directly.
    Dram {
        /// Embedding-table index.
        table: u16,
        /// Original feature id within the table.
        feature: u64,
    },
}

/// Packed on-device representation of a [`Loc`] (8 bytes per slot).
///
/// Layout: bit 0 is the DRAM tag. For HBM, bits 1..17 hold the class and
/// bits 17..49 the slot. For DRAM, bits 1..9 hold the table and bits 9..64
/// the feature id (55 bits).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PackedLoc(u64);

/// Maximum feature id representable in a packed DRAM pointer (55 bits).
pub const MAX_DRAM_FEATURE: u64 = (1 << 55) - 1;
/// Maximum table id representable in a packed DRAM pointer (8 bits).
pub const MAX_DRAM_TABLE: u16 = u8::MAX as u16;

impl Loc {
    /// Packs into the 8-byte on-device form.
    ///
    /// # Panics
    ///
    /// Panics if a DRAM location exceeds the 8-bit table / 55-bit feature
    /// budget, or an HBM slot exceeds 32 bits of slot / 16 bits of class —
    /// all far beyond anything this repository instantiates.
    pub fn pack(self) -> PackedLoc {
        match self {
            Loc::Hbm { class, slot } => PackedLoc(((class as u64) << 1) | ((slot as u64) << 17)),
            Loc::Dram { table, feature } => {
                assert!(
                    table <= MAX_DRAM_TABLE,
                    "table id {table} too large to pack"
                );
                assert!(
                    feature <= MAX_DRAM_FEATURE,
                    "feature id {feature} too large to pack"
                );
                PackedLoc(1 | ((table as u64) << 1) | (feature << 9))
            }
        }
    }
}

impl PackedLoc {
    /// Unpacks back into the enum form.
    pub fn unpack(self) -> Loc {
        if self.0 & 1 == 0 {
            Loc::Hbm {
                class: ((self.0 >> 1) & 0xFFFF) as u16,
                slot: ((self.0 >> 17) & 0xFFFF_FFFF) as u32,
            }
        } else {
            Loc::Dram {
                table: ((self.0 >> 1) & 0xFF) as u16,
                feature: self.0 >> 9,
            }
        }
    }

    /// True when this is a tagged CPU-DRAM pointer.
    pub fn is_dram(self) -> bool {
        self.0 & 1 == 1
    }
}

impl From<Loc> for PackedLoc {
    fn from(l: Loc) -> PackedLoc {
        l.pack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbm_round_trips() {
        let l = Loc::Hbm {
            class: 7,
            slot: 123_456,
        };
        assert_eq!(l.pack().unpack(), l);
        assert!(!l.pack().is_dram());
    }

    #[test]
    fn dram_round_trips() {
        let l = Loc::Dram {
            table: 97,
            feature: 0x1234_5678_9ABC,
        };
        assert_eq!(l.pack().unpack(), l);
        assert!(l.pack().is_dram());
    }

    #[test]
    fn extremes_round_trip() {
        for l in [
            Loc::Hbm { class: 0, slot: 0 },
            Loc::Hbm {
                class: u16::MAX,
                slot: u32::MAX,
            },
            Loc::Dram {
                table: 0,
                feature: 0,
            },
            Loc::Dram {
                table: MAX_DRAM_TABLE,
                feature: MAX_DRAM_FEATURE,
            },
        ] {
            assert_eq!(l.pack().unpack(), l);
        }
    }

    #[test]
    #[should_panic(expected = "feature id")]
    fn oversized_feature_panics() {
        let _ = Loc::Dram {
            table: 0,
            feature: MAX_DRAM_FEATURE + 1,
        }
        .pack();
    }

    #[test]
    fn lsb_is_the_tag() {
        let h = Loc::Hbm { class: 1, slot: 1 }.pack();
        let d = Loc::Dram {
            table: 1,
            feature: 1,
        }
        .pack();
        assert_eq!(h.0 & 1, 0);
        assert_eq!(d.0 & 1, 1);
    }
}
