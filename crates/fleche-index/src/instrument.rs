//! Operation instrumentation.
//!
//! Every index/pool operation reports what it touched so callers can charge
//! the GPU cost model faithfully: slab probes become dependent
//! global-memory rounds, slot traffic becomes bytes, CAS-style updates
//! become atomics.

/// Footprint of one or more index operations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeStats {
    /// Slabs (32-slot cache lines) read while walking bucket chains.
    pub slabs_visited: u64,
    /// Longest single-operation chain walk (serial dependent rounds).
    pub max_chain: u32,
    /// Atomic read-modify-write operations (slot claims, timestamp bumps).
    pub atomics: u64,
    /// Bytes of index metadata read or written.
    pub bytes_touched: u64,
    /// Operations that found their key.
    pub hits: u64,
    /// Operations that did not find their key.
    pub misses: u64,
}

impl ProbeStats {
    /// A zeroed record.
    pub fn new() -> ProbeStats {
        ProbeStats::default()
    }

    /// Accumulates `other` as work done *concurrently* with this: traffic
    /// adds, the critical chain takes the maximum.
    pub fn merge(&mut self, other: &ProbeStats) {
        self.slabs_visited += other.slabs_visited;
        self.max_chain = self.max_chain.max(other.max_chain);
        self.atomics += other.atomics;
        self.bytes_touched += other.bytes_touched;
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Hit fraction over all recorded operations (0 when empty).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_traffic_maxes_chain() {
        let mut a = ProbeStats {
            slabs_visited: 3,
            max_chain: 2,
            atomics: 1,
            bytes_touched: 300,
            hits: 1,
            misses: 0,
        };
        let b = ProbeStats {
            slabs_visited: 5,
            max_chain: 4,
            atomics: 2,
            bytes_touched: 500,
            hits: 0,
            misses: 2,
        };
        a.merge(&b);
        assert_eq!(a.slabs_visited, 8);
        assert_eq!(a.max_chain, 4);
        assert_eq!(a.atomics, 3);
        assert_eq!(a.bytes_touched, 800);
        assert_eq!(a.hits, 1);
        assert_eq!(a.misses, 2);
    }

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(ProbeStats::new().hit_rate(), 0.0);
        let s = ProbeStats {
            hits: 3,
            misses: 1,
            ..ProbeStats::new()
        };
        assert_eq!(s.hit_rate(), 0.75);
    }
}
