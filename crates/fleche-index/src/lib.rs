//! # fleche-index
//!
//! GPU-resident hash-index substrate for the Fleche (EuroSys '22)
//! reproduction: the pieces flat cache is assembled from.
//!
//! * [`SlabHash`] — a SlabHash-style bucketed hash index (warp-wide 32-slot
//!   slabs, linked overflow slabs, per-slot logical timestamps for
//!   approximate LRU and conflict versioning).
//! * [`SlabPool`] — the pre-allocated value store, partitioned into size
//!   classes by embedding dimension so no fragmentation or `cudaMalloc`
//!   calls occur on the query path.
//! * [`EpochManager`] — epoch-based reclamation protecting decoupled copy
//!   kernels from read-after-delete during eviction.
//! * [`MegaKv`] — the other GPU index family the paper names: a bucketed
//!   cuckoo hash with two bounded probes per lookup, behind the same
//!   [`GpuIndex`] trait so flat cache can use either backend.
//! * [`Loc`]/[`PackedLoc`] — 8-byte value locations whose least-significant
//!   bit tags CPU-DRAM pointers (the unified-index trick).
//!
//! Structures are functionally exact; each operation also returns
//! [`ProbeStats`] so callers can charge the `fleche-gpu` cost model with
//! the traffic a CUDA kernel doing the same work would generate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epoch;
pub mod index_trait;
pub mod instrument;
pub mod loc;
pub mod mega_kv;
pub mod pool;
pub mod slab_hash;

pub use epoch::{EpochGuard, EpochManager};
pub use index_trait::{GpuIndex, IndexInsert};
pub use instrument::ProbeStats;
pub use loc::{Loc, PackedLoc, MAX_DRAM_FEATURE, MAX_DRAM_TABLE};
pub use mega_kv::{MegaKv, BUCKET_BYTES, BUCKET_WIDTH};
pub use pool::{fnv1a_batch, fnv1a_of, ClassSpec, PoolError, SlabPool};
pub use slab_hash::{InsertOutcome, ScanEntry, SlabHash, SLAB_BYTES, SLAB_WIDTH};
