//! The slab memory pool storing embedding payloads.
//!
//! Flat cache separates keys from values: the index maps flat keys to
//! locations, and this pool owns the bytes. Fragmentation is avoided by
//! pre-defining slab *size classes*, one per embedding dimension (all
//! embeddings of a table share one known size), and the whole pool is
//! pre-allocated at boot so the `cudaMalloc` latency never appears on the
//! query path — both points straight from the paper's §3.1.

use crate::instrument::ProbeStats;

/// FNV-1a over a value's raw f32 bits (little-endian byte order) — the
/// canonical per-slot checksum. [`SlabPool::write_with_checksum`] computes
/// the same hash fused into its copy loop; callers that only need to
/// verify existing bytes use this standalone form.
pub fn fnv1a_of(value: &[f32]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for v in value {
        for b in v.to_bits().to_le_bytes() {
            h ^= b as u32;
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// Checksums many slots per pass. `out[i]` is bit-identical to
/// `fnv1a_of(values[i])`; the win is batch-level — FNV-1a is a serial
/// multiply chain per slot, so the kernel streams four interleaved slot
/// chains to keep the multiplier busy (see fleche-simd's crate docs).
pub fn fnv1a_batch(values: &[&[f32]]) -> Vec<u32> {
    fleche_simd::checksum_batch(values)
}

/// Error type for pool operations.
#[derive(Debug, PartialEq, Eq)]
pub enum PoolError {
    /// No size class with this dimension was registered at construction.
    UnknownClass {
        /// The class index requested.
        class: u16,
    },
    /// The class has no free slots left.
    ClassFull {
        /// The class index that was full.
        class: u16,
    },
    /// A slot reference did not name a live allocation.
    InvalidSlot {
        /// The class index.
        class: u16,
        /// The offending slot.
        slot: u32,
    },
    /// Value length does not match the class dimension.
    DimensionMismatch {
        /// Expected dimension (floats).
        expected: u32,
        /// Provided value length.
        got: usize,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::UnknownClass { class } => write!(f, "unknown size class {class}"),
            PoolError::ClassFull { class } => write!(f, "size class {class} is full"),
            PoolError::InvalidSlot { class, slot } => {
                write!(f, "slot {slot} in class {class} is not allocated")
            }
            PoolError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} floats, got {got}")
            }
        }
    }
}

impl std::error::Error for PoolError {}

#[derive(Debug)]
struct SizeClass {
    dim: u32,
    /// Payload storage: `capacity_slots * dim` floats.
    data: Vec<f32>,
    /// Stack of free slot numbers.
    free: Vec<u32>,
    /// Liveness bitmap (one bool per slot) guarding double-free.
    live: Vec<bool>,
    /// Retirement bitmap: set between logical retirement (eviction,
    /// quarantine) and physical reclamation. A retired slot may only be
    /// read through the grace-period path.
    retired: Vec<bool>,
    capacity_slots: u32,
}

/// The pre-allocated, size-class-partitioned value store.
#[derive(Debug)]
pub struct SlabPool {
    classes: Vec<SizeClass>,
}

/// Description of one size class for construction.
#[derive(Clone, Copy, Debug)]
pub struct ClassSpec {
    /// Embedding dimension (floats per value).
    pub dim: u32,
    /// Number of value slots to pre-allocate.
    pub slots: u32,
}

impl SlabPool {
    /// Pre-allocates the pool. One class per entry of `specs`; class `i` of
    /// the returned pool corresponds to `specs[i]`.
    pub fn new(specs: &[ClassSpec]) -> SlabPool {
        let classes = specs
            .iter()
            .map(|s| SizeClass {
                dim: s.dim,
                data: vec![0.0; s.slots as usize * s.dim as usize],
                free: (0..s.slots).rev().collect(),
                live: vec![false; s.slots as usize],
                retired: vec![false; s.slots as usize],
                capacity_slots: s.slots,
            })
            .collect();
        SlabPool { classes }
    }

    /// Number of size classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Dimension of class `class`.
    pub fn dim_of(&self, class: u16) -> Option<u32> {
        self.classes.get(class as usize).map(|c| c.dim)
    }

    /// Index of the class with dimension `dim`, if registered.
    pub fn class_for_dim(&self, dim: u32) -> Option<u16> {
        self.classes
            .iter()
            .position(|c| c.dim == dim)
            .map(|i| i as u16)
    }

    /// Total payload capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| c.capacity_slots as u64 * c.dim as u64 * 4)
            .sum()
    }

    /// Bytes currently allocated.
    pub fn allocated_bytes(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| (c.capacity_slots - c.free.len() as u32) as u64 * c.dim as u64 * 4)
            .sum()
    }

    /// Allocated fraction of capacity, in `[0, 1]`; the eviction trigger
    /// compares this against its high-watermark.
    pub fn utilization(&self) -> f64 {
        let cap = self.capacity_bytes();
        if cap == 0 {
            0.0
        } else {
            self.allocated_bytes() as f64 / cap as f64
        }
    }

    /// Free slots remaining in `class`.
    pub fn free_slots(&self, class: u16) -> u32 {
        self.classes
            .get(class as usize)
            .map_or(0, |c| c.free.len() as u32)
    }

    /// Claims a slot in `class`. One atomic on the free-list head.
    pub fn alloc(&mut self, class: u16) -> Result<(u32, ProbeStats), PoolError> {
        let c = self
            .classes
            .get_mut(class as usize)
            .ok_or(PoolError::UnknownClass { class })?;
        let slot = c.free.pop().ok_or(PoolError::ClassFull { class })?;
        debug_assert!(
            !c.live[slot as usize] && !c.retired[slot as usize],
            "free-list slot must be neither live nor retired"
        );
        c.live[slot as usize] = true;
        c.retired[slot as usize] = false;
        let stats = ProbeStats {
            atomics: 1,
            bytes_touched: 8,
            ..ProbeStats::new()
        };
        Ok((slot, stats))
    }

    /// Returns a slot to the free list.
    pub fn free(&mut self, class: u16, slot: u32) -> Result<ProbeStats, PoolError> {
        let c = self
            .classes
            .get_mut(class as usize)
            .ok_or(PoolError::UnknownClass { class })?;
        if slot >= c.capacity_slots || !c.live[slot as usize] {
            return Err(PoolError::InvalidSlot { class, slot });
        }
        c.live[slot as usize] = false;
        c.retired[slot as usize] = false;
        c.free.push(slot);
        Ok(ProbeStats {
            atomics: 1,
            bytes_touched: 8,
            ..ProbeStats::new()
        })
    }

    /// Writes an embedding into a live slot.
    pub fn write(&mut self, class: u16, slot: u32, value: &[f32]) -> Result<ProbeStats, PoolError> {
        let c = self
            .classes
            .get_mut(class as usize)
            .ok_or(PoolError::UnknownClass { class })?;
        if slot >= c.capacity_slots || !c.live[slot as usize] {
            return Err(PoolError::InvalidSlot { class, slot });
        }
        if value.len() != c.dim as usize {
            return Err(PoolError::DimensionMismatch {
                expected: c.dim,
                got: value.len(),
            });
        }
        let off = slot as usize * c.dim as usize;
        c.data[off..off + value.len()].copy_from_slice(value);
        Ok(ProbeStats {
            bytes_touched: value.len() as u64 * 4,
            ..ProbeStats::new()
        })
    }

    /// Writes an embedding into a live slot and returns its FNV-1a
    /// checksum, folding the hash into the copy loop so checksummed
    /// hot-path writes make one pass over the payload instead of a copy
    /// pass followed by a hash pass. The returned value is identical to
    /// [`fnv1a_of`] over `value`.
    pub fn write_with_checksum(
        &mut self,
        class: u16,
        slot: u32,
        value: &[f32],
    ) -> Result<(u32, ProbeStats), PoolError> {
        let c = self
            .classes
            .get_mut(class as usize)
            .ok_or(PoolError::UnknownClass { class })?;
        if slot >= c.capacity_slots || !c.live[slot as usize] {
            return Err(PoolError::InvalidSlot { class, slot });
        }
        if value.len() != c.dim as usize {
            return Err(PoolError::DimensionMismatch {
                expected: c.dim,
                got: value.len(),
            });
        }
        let off = slot as usize * c.dim as usize;
        let dst = &mut c.data[off..off + value.len()];
        let mut h: u32 = 0x811C_9DC5;
        for (d, v) in dst.iter_mut().zip(value) {
            *d = *v;
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u32;
                h = h.wrapping_mul(0x0100_0193);
            }
        }
        Ok((
            h,
            ProbeStats {
                bytes_touched: value.len() as u64 * 4,
                ..ProbeStats::new()
            },
        ))
    }

    /// Reads the embedding stored in a live slot.
    pub fn read(&self, class: u16, slot: u32) -> Result<&[f32], PoolError> {
        let c = self
            .classes
            .get(class as usize)
            .ok_or(PoolError::UnknownClass { class })?;
        if slot >= c.capacity_slots || !c.live[slot as usize] {
            return Err(PoolError::InvalidSlot { class, slot });
        }
        debug_assert!(
            !c.retired[slot as usize],
            "read of a retired slab (class {class}, slot {slot}): grace-period \
             readers must use read_during_grace"
        );
        let off = slot as usize * c.dim as usize;
        Ok(&c.data[off..off + c.dim as usize])
    }

    /// Marks a live slot as logically retired (awaiting epoch
    /// reclamation). Plain [`SlabPool::read`] debug-asserts against
    /// retired slots from then on; [`SlabPool::read_during_grace`] stays
    /// valid. Cleared by the eventual [`SlabPool::free`] (or a re-alloc).
    pub fn note_retired(&mut self, class: u16, slot: u32) {
        if let Some(c) = self.classes.get_mut(class as usize) {
            if (slot as usize) < c.retired.len() {
                debug_assert!(c.live[slot as usize], "retiring a non-live slot");
                c.retired[slot as usize] = true;
            }
        }
    }

    /// True when `slot` is retired but not yet reclaimed.
    pub fn is_retired(&self, class: u16, slot: u32) -> bool {
        self.classes
            .get(class as usize)
            .and_then(|c| c.retired.get(slot as usize))
            .copied()
            .unwrap_or(false)
    }

    /// Live slots of `class` in slot order. Fault-injection harnesses use
    /// this to pick corruption victims deterministically; it is O(capacity),
    /// not a query-path operation.
    pub fn live_slots(&self, class: u16) -> Vec<u32> {
        self.classes.get(class as usize).map_or(Vec::new(), |c| {
            c.live
                .iter()
                .enumerate()
                .filter_map(|(i, &l)| l.then_some(i as u32))
                .collect()
        })
    }

    /// Total live slots across all classes.
    pub fn live_count(&self) -> u64 {
        self.classes
            .iter()
            .map(|c| (c.capacity_slots - c.free.len() as u32) as u64)
            .sum()
    }

    /// Flips one bit of one float of a live slot, simulating a soft memory
    /// error in HBM. Returns the value before corruption. `word` indexes the
    /// floats of the slot (mod dim), `bit` indexes the f32's bits (mod 32).
    ///
    /// This is a *fault-injection* hook: nothing on the normal path calls
    /// it, and checksummed readers are expected to detect its effect.
    pub fn corrupt_bit(
        &mut self,
        class: u16,
        slot: u32,
        word: u32,
        bit: u32,
    ) -> Result<f32, PoolError> {
        let c = self
            .classes
            .get_mut(class as usize)
            .ok_or(PoolError::UnknownClass { class })?;
        if slot >= c.capacity_slots || !c.live[slot as usize] {
            return Err(PoolError::InvalidSlot { class, slot });
        }
        let off = slot as usize * c.dim as usize + (word % c.dim) as usize;
        let before = c.data[off];
        c.data[off] = f32::from_bits(before.to_bits() ^ (1u32 << (bit % 32)));
        Ok(before)
    }

    /// Returns every class to its freshly-built state: all slots free, no
    /// live or retired entries, payload bytes zeroed. Models a device loss
    /// wiping HBM — the pre-allocated slabs survive as capacity (no
    /// `cudaMalloc` on the recovery path), their contents do not.
    pub fn reset(&mut self) {
        for c in &mut self.classes {
            c.data.fill(0.0);
            c.free = (0..c.capacity_slots).rev().collect();
            c.live.fill(false);
            c.retired.fill(false);
        }
    }

    /// Reads a slot that may have been logically retired but not yet
    /// reclaimed (the epoch grace period makes this safe); only bounds are
    /// checked. Decoupled copy kernels use this path.
    pub fn read_during_grace(&self, class: u16, slot: u32) -> Result<&[f32], PoolError> {
        let c = self
            .classes
            .get(class as usize)
            .ok_or(PoolError::UnknownClass { class })?;
        if slot >= c.capacity_slots {
            return Err(PoolError::InvalidSlot { class, slot });
        }
        let off = slot as usize * c.dim as usize;
        Ok(&c.data[off..off + c.dim as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> SlabPool {
        SlabPool::new(&[
            ClassSpec { dim: 4, slots: 8 },
            ClassSpec { dim: 8, slots: 4 },
        ])
    }

    #[test]
    fn alloc_write_read_free_cycle() {
        let mut p = pool();
        let (slot, _) = p.alloc(0).unwrap();
        p.write(0, slot, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(p.read(0, slot).unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        p.free(0, slot).unwrap();
        assert_eq!(
            p.read(0, slot),
            Err(PoolError::InvalidSlot { class: 0, slot })
        );
    }

    #[test]
    fn fused_write_matches_two_pass_checksum() {
        let mut p = pool();
        let (slot, _) = p.alloc(0).unwrap();
        for value in [
            [1.0f32, 2.0, 3.0, 4.0],
            [0.0, -0.0, f32::NAN, f32::INFINITY],
            [1e-38, -1e38, 0.5, -0.5],
        ] {
            let (h, stats) = p.write_with_checksum(0, slot, &value).unwrap();
            assert_eq!(h, fnv1a_of(&value));
            assert_eq!(stats.bytes_touched, 16);
            let bits: Vec<u32> = p
                .read(0, slot)
                .unwrap()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let want: Vec<u32> = value.iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, want, "fused write must store identical bytes");
        }
        assert_eq!(
            p.write_with_checksum(0, slot, &[1.0]),
            Err(PoolError::DimensionMismatch {
                expected: 4,
                got: 1
            })
        );
        p.free(0, slot).unwrap();
        assert_eq!(
            p.write_with_checksum(0, slot, &[0.0; 4]),
            Err(PoolError::InvalidSlot { class: 0, slot })
        );
    }

    #[test]
    fn capacity_and_utilization_accounting() {
        let mut p = pool();
        assert_eq!(p.capacity_bytes(), 8 * 4 * 4 + 4 * 8 * 4);
        assert_eq!(p.utilization(), 0.0);
        let (s0, _) = p.alloc(0).unwrap();
        let (_s1, _) = p.alloc(1).unwrap();
        assert_eq!(p.allocated_bytes(), 4 * 4 + 8 * 4);
        assert!(p.utilization() > 0.0 && p.utilization() < 1.0);
        p.free(0, s0).unwrap();
        assert_eq!(p.allocated_bytes(), 8 * 4);
    }

    #[test]
    fn class_exhaustion_is_reported() {
        let mut p = SlabPool::new(&[ClassSpec { dim: 2, slots: 2 }]);
        p.alloc(0).unwrap();
        p.alloc(0).unwrap();
        assert_eq!(p.alloc(0).unwrap_err(), PoolError::ClassFull { class: 0 });
    }

    #[test]
    fn double_free_is_rejected() {
        let mut p = pool();
        let (slot, _) = p.alloc(0).unwrap();
        p.free(0, slot).unwrap();
        assert_eq!(
            p.free(0, slot),
            Err(PoolError::InvalidSlot { class: 0, slot })
        );
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let mut p = pool();
        let (slot, _) = p.alloc(0).unwrap();
        assert_eq!(
            p.write(0, slot, &[1.0]),
            Err(PoolError::DimensionMismatch {
                expected: 4,
                got: 1
            })
        );
    }

    #[test]
    fn unknown_class_is_rejected() {
        let mut p = pool();
        assert_eq!(
            p.alloc(9).unwrap_err(),
            PoolError::UnknownClass { class: 9 }
        );
        assert!(p.read(9, 0).is_err());
        assert_eq!(p.dim_of(9), None);
        assert_eq!(p.class_for_dim(4), Some(0));
        assert_eq!(p.class_for_dim(8), Some(1));
        assert_eq!(p.class_for_dim(99), None);
    }

    #[test]
    fn retired_bitmap_tracks_lifecycle() {
        let mut p = pool();
        let (slot, _) = p.alloc(0).unwrap();
        assert!(!p.is_retired(0, slot));
        p.note_retired(0, slot);
        assert!(p.is_retired(0, slot));
        // Grace-period reads stay legal on a retired slot.
        assert!(p.read_during_grace(0, slot).is_ok());
        // Reclamation clears the flag...
        p.free(0, slot).unwrap();
        assert!(!p.is_retired(0, slot));
        // ...and so does re-allocation of the same slot.
        let (slot2, _) = p.alloc(0).unwrap();
        assert!(!p.is_retired(0, slot2));
        // Out-of-range queries are just false, never a panic.
        assert!(!p.is_retired(7, 0));
        assert!(!p.is_retired(0, 999));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "retired slab")]
    fn plain_read_of_retired_slot_asserts() {
        let mut p = pool();
        let (slot, _) = p.alloc(0).unwrap();
        p.note_retired(0, slot);
        let _ = p.read(0, slot);
    }

    #[test]
    fn grace_period_read_sees_stale_value() {
        let mut p = pool();
        let (slot, _) = p.alloc(0).unwrap();
        p.write(0, slot, &[9.0, 9.0, 9.0, 9.0]).unwrap();
        p.free(0, slot).unwrap();
        // Logically deleted, physically still readable until reclaimed.
        assert_eq!(p.read_during_grace(0, slot).unwrap(), &[9.0, 9.0, 9.0, 9.0]);
        assert!(p.read_during_grace(0, 999).is_err());
    }

    #[test]
    fn corrupt_bit_flips_exactly_one_bit_and_reports_old_value() {
        let mut p = pool();
        let (slot, _) = p.alloc(0).unwrap();
        p.write(0, slot, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let before = p.corrupt_bit(0, slot, 1, 22).unwrap();
        assert_eq!(before, 2.0);
        let after = p.read(0, slot).unwrap()[1];
        assert_ne!(after, 2.0);
        assert_eq!(after.to_bits() ^ 2.0f32.to_bits(), 1 << 22);
        // Other words untouched.
        assert_eq!(p.read(0, slot).unwrap()[0], 1.0);
        // Flipping the same bit back restores the value.
        p.corrupt_bit(0, slot, 1, 22).unwrap();
        assert_eq!(p.read(0, slot).unwrap(), &[1.0, 2.0, 3.0, 4.0]);
        // Dead slots are not valid victims.
        p.free(0, slot).unwrap();
        assert_eq!(
            p.corrupt_bit(0, slot, 0, 0),
            Err(PoolError::InvalidSlot { class: 0, slot })
        );
    }

    #[test]
    fn live_slot_enumeration() {
        let mut p = pool();
        assert_eq!(p.live_count(), 0);
        assert!(p.live_slots(0).is_empty());
        let (a, _) = p.alloc(0).unwrap();
        let (b, _) = p.alloc(0).unwrap();
        let (c, _) = p.alloc(1).unwrap();
        assert_eq!(p.live_count(), 3);
        let mut live = p.live_slots(0);
        live.sort_unstable();
        let mut expect = vec![a, b];
        expect.sort_unstable();
        assert_eq!(live, expect);
        assert_eq!(p.live_slots(1), vec![c]);
        assert!(p.live_slots(7).is_empty());
        p.free(0, a).unwrap();
        assert_eq!(p.live_slots(0), vec![b]);
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn reset_restores_fresh_state() {
        let mut p = pool();
        let (a, _) = p.alloc(0).unwrap();
        p.write(0, a, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let (b, _) = p.alloc(0).unwrap();
        p.note_retired(0, b);
        p.reset();
        assert_eq!(p.live_count(), 0);
        assert_eq!(p.allocated_bytes(), 0);
        assert!(!p.is_retired(0, b));
        // Allocation order matches a freshly built pool.
        let fresh_first = SlabPool::new(&[ClassSpec { dim: 4, slots: 8 }])
            .alloc(0)
            .unwrap()
            .0;
        let (c, _) = p.alloc(0).unwrap();
        assert_eq!(c, fresh_first);
        // Old payload bytes are gone.
        p.write(0, c, &[5.0; 4]).unwrap();
        assert_eq!(p.read(0, c).unwrap(), &[5.0; 4]);
    }

    #[test]
    fn slots_recycle_lifo() {
        let mut p = pool();
        let (a, _) = p.alloc(0).unwrap();
        p.free(0, a).unwrap();
        let (b, _) = p.alloc(0).unwrap();
        assert_eq!(a, b);
    }
}
