//! Epoch-based space reclamation.
//!
//! Eviction may race with in-flight decoupled copy kernels (the paper's
//! read-after-delete case): an evicted pool slot must stay readable until
//! every reader that could still hold its address has finished. The scheme
//! is the classic epoch one: readers pin the current epoch; retiring a slot
//! records the epoch at retirement; a retired slot is reclaimed only once
//! every pinned epoch has advanced past it.

use std::collections::VecDeque;

/// A guard representing an in-flight reader (e.g. a launched copy kernel
/// that received pool addresses). Dropping the guard is *not* enough — it
/// must be explicitly released so the release can be tied to the simulated
/// kernel completion, not Rust scope.
#[derive(Debug, PartialEq, Eq)]
pub struct EpochGuard {
    id: u64,
    epoch: u64,
}

impl EpochGuard {
    /// The epoch this reader pinned.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

/// Manages retirement of items of type `T` (for the cache, pool slots).
#[derive(Debug)]
pub struct EpochManager<T> {
    global: u64,
    /// (guard id, pinned epoch) for every outstanding reader.
    active: Vec<(u64, u64)>,
    /// (retirement epoch, item), oldest first.
    retired: VecDeque<(u64, T)>,
    next_guard: u64,
}

impl<T> Default for EpochManager<T> {
    fn default() -> Self {
        EpochManager::new()
    }
}

impl<T> EpochManager<T> {
    /// Creates a manager at epoch 0 with no readers.
    pub fn new() -> EpochManager<T> {
        EpochManager {
            global: 0,
            active: Vec::new(),
            retired: VecDeque::new(),
            next_guard: 0,
        }
    }

    /// Current global epoch.
    pub fn epoch(&self) -> u64 {
        self.global
    }

    /// Number of outstanding readers.
    pub fn readers(&self) -> usize {
        self.active.len()
    }

    /// Number of items awaiting reclamation.
    pub fn retired_len(&self) -> usize {
        self.retired.len()
    }

    /// Advances the global epoch (called once per query batch).
    pub fn advance(&mut self) {
        self.global += 1;
    }

    /// Registers a reader pinned at the current epoch.
    pub fn pin(&mut self) -> EpochGuard {
        let id = self.next_guard;
        self.next_guard += 1;
        debug_assert!(
            self.active.iter().all(|&(_, e)| e <= self.global),
            "pinned epochs may never exceed the global epoch"
        );
        self.active.push((id, self.global));
        EpochGuard {
            id,
            epoch: self.global,
        }
    }

    /// Releases a reader.
    ///
    /// # Panics
    ///
    /// Panics if the guard was already released — that is a
    /// use-after-release bug in the caller.
    pub fn unpin(&mut self, guard: EpochGuard) {
        let pos = self
            .active
            .iter()
            .position(|&(id, _)| id == guard.id)
            .expect("epoch guard released twice");
        self.active.swap_remove(pos);
    }

    /// Marks `item` logically deleted at the current epoch.
    pub fn retire(&mut self, item: T) {
        // The queue stays sorted by retirement epoch because the global
        // epoch is monotone; try_reclaim's front-only scan relies on it.
        debug_assert!(
            self.retired.back().map_or(true, |&(e, _)| e <= self.global),
            "retirement epochs must be monotone"
        );
        self.retired.push_back((self.global, item));
    }

    /// Reclaims every retired item whose retirement epoch is strictly
    /// before all pinned epochs, invoking `free` on each. Returns how many
    /// were reclaimed.
    pub fn try_reclaim(&mut self, mut free: impl FnMut(T)) -> usize {
        let horizon = self
            .active
            .iter()
            .map(|&(_, e)| e)
            .min()
            .unwrap_or(self.global);
        debug_assert!(
            horizon <= self.global,
            "horizon is bounded by the global epoch"
        );
        let mut n = 0;
        while let Some(&(e, _)) = self.retired.front() {
            if e < horizon {
                let (_, item) = self.retired.pop_front().expect("front checked");
                free(item);
                n += 1;
            } else {
                break;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_readers_reclaims_after_advance() {
        let mut m = EpochManager::new();
        m.retire(1u32);
        // Retired at the current epoch: not yet safe (a reader could still
        // be registered in this epoch).
        assert_eq!(m.try_reclaim(|_| {}), 0);
        m.advance();
        let mut freed = Vec::new();
        assert_eq!(m.try_reclaim(|x| freed.push(x)), 1);
        assert_eq!(freed, vec![1]);
        assert_eq!(m.retired_len(), 0);
    }

    #[test]
    fn pinned_reader_blocks_reclamation() {
        let mut m = EpochManager::new();
        let guard = m.pin();
        m.retire(7u32);
        m.advance();
        m.advance();
        assert_eq!(m.try_reclaim(|_| {}), 0, "reader from epoch 0 still live");
        m.unpin(guard);
        assert_eq!(m.try_reclaim(|_| {}), 1);
    }

    #[test]
    fn later_reader_does_not_block_older_garbage() {
        let mut m = EpochManager::new();
        m.retire(1u32); // retired at epoch 0
        m.advance(); // epoch 1
        let late = m.pin(); // pinned at 1
        m.retire(2u32); // retired at epoch 1
        m.advance();
        let mut freed = Vec::new();
        m.try_reclaim(|x| freed.push(x));
        assert_eq!(freed, vec![1], "item from epoch 0 is older than pin at 1");
        m.unpin(late);
        m.try_reclaim(|x| freed.push(x));
        assert_eq!(freed, vec![1, 2]);
    }

    #[test]
    fn reclaim_preserves_retirement_order() {
        let mut m = EpochManager::new();
        m.retire("a");
        m.advance();
        m.retire("b");
        m.advance();
        let mut freed = Vec::new();
        m.try_reclaim(|x| freed.push(x));
        assert_eq!(freed, vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "released twice")]
    fn double_release_panics() {
        let mut m = EpochManager::<u32>::new();
        let g = m.pin();
        let fake = EpochGuard {
            id: g.id,
            epoch: g.epoch,
        };
        m.unpin(g);
        m.unpin(fake);
    }

    #[test]
    fn reader_counts_track() {
        let mut m = EpochManager::<u32>::new();
        let a = m.pin();
        let b = m.pin();
        assert_eq!(m.readers(), 2);
        m.unpin(a);
        assert_eq!(m.readers(), 1);
        m.unpin(b);
        assert_eq!(m.readers(), 0);
    }
}
