//! Model of the micro-batcher's concurrent seal/linger discipline.
//!
//! [`fleche_model::MicroBatcher::plan`] is pure logical time, but the
//! discipline it encodes — a batch seals at `first_arrival + linger` or
//! when the `max_batch`-th request joins, whichever is earlier — is what
//! a threaded batcher must implement under a lock: arrival threads
//! append and seal-on-full; a linger timer seals whatever is pending
//! when it fires. The model keeps the pending buffer under a mutex,
//! with the timer's firing left entirely to the scheduler (every linger
//! expiry interleaving is explored).
//!
//! Checked: every batch is non-empty and within `max_batch`, members
//! stay in arrival order, and at quiescence every arrival sits in
//! exactly one sealed batch (no loss, no duplicate) — the same
//! invariants `tests/serve_props.rs` asserts of the logical-time plan.

use crate::explore::{Access, Model, Step};
use crate::sync::Mutex;

/// Model configuration.
#[derive(Clone, Copy, Debug)]
pub struct BatcherConfig {
    /// Arrival threads (one request each).
    pub arrivals: usize,
    /// Seal-on-full bound.
    pub max_batch: usize,
    /// Linger-timer firings before the final flush.
    pub timer_rounds: usize,
    /// Seal on the occupancy observed *before* taking the lock instead
    /// of re-checking under it.
    pub mutant_stale_seal: bool,
}

impl BatcherConfig {
    /// The shipped property configuration: three arrivals, batches of
    /// two, one mid-stream timer firing plus the flush.
    pub fn default_property() -> BatcherConfig {
        BatcherConfig {
            arrivals: 3,
            max_batch: 2,
            timer_rounds: 1,
            mutant_stale_seal: false,
        }
    }
}

const MUTEX: u64 = 80;
const PENDING: u64 = 81;

#[derive(Clone, Debug, PartialEq, Eq)]
enum TimerPc {
    /// Peek at the occupancy without the lock (mutant only).
    Peek {
        round: usize,
    },
    /// Seal: under the mutant, on the peeked occupancy; otherwise on a
    /// fresh check under the lock.
    Seal {
        round: usize,
        observed: u64,
    },
    /// The final flush after the last arrival (the linger that always
    /// fires once the stream quiesces).
    Flush,
    Done,
}

/// The batcher model. Thread 0 is the linger timer; threads
/// `1..=arrivals` each deliver one request.
#[derive(Clone, Debug)]
pub struct BatcherModel {
    cfg: BatcherConfig,
    mutex: Mutex,
    /// Sequence numbers pending in the open batch.
    pending: Vec<u64>,
    /// Sealed batches, in seal order.
    sealed: Vec<Vec<u64>>,
    next_seq: u64,
    timer: TimerPc,
    /// Arrival thread i has delivered its request.
    arrived: Vec<bool>,
    violation: Option<String>,
}

impl BatcherModel {
    /// Builds the model.
    pub fn new(cfg: BatcherConfig) -> BatcherModel {
        assert!(cfg.arrivals > 0 && cfg.max_batch > 0);
        BatcherModel {
            cfg,
            mutex: Mutex::new(MUTEX),
            pending: Vec::new(),
            sealed: Vec::new(),
            next_seq: 0,
            timer: if cfg.timer_rounds == 0 {
                TimerPc::Flush
            } else if cfg.mutant_stale_seal {
                TimerPc::Peek { round: 0 }
            } else {
                TimerPc::Seal {
                    round: 0,
                    observed: 0,
                }
            },
            arrived: vec![false; cfg.arrivals],
            violation: None,
        }
    }

    fn seal(&mut self) {
        self.sealed.push(std::mem::take(&mut self.pending));
    }

    fn next_round(&mut self, round: usize) {
        self.timer = if round + 1 < self.cfg.timer_rounds {
            if self.cfg.mutant_stale_seal {
                TimerPc::Peek { round: round + 1 }
            } else {
                TimerPc::Seal {
                    round: round + 1,
                    observed: 0,
                }
            }
        } else {
            TimerPc::Flush
        };
    }
}

impl Model for BatcherModel {
    fn thread_count(&self) -> usize {
        1 + self.cfg.arrivals
    }

    fn thread_name(&self, tid: usize) -> String {
        if tid == 0 {
            "linger-timer".to_string()
        } else {
            format!("arrival{}", tid - 1)
        }
    }

    fn done(&self, tid: usize) -> bool {
        if tid == 0 {
            self.timer == TimerPc::Done
        } else {
            self.arrived[tid - 1]
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        if tid == 0 {
            match self.timer {
                TimerPc::Peek { .. } => true,
                TimerPc::Seal { .. } => self.mutex.free(),
                // The quiescent linger: fires after the last arrival.
                TimerPc::Flush => self.mutex.free() && self.arrived.iter().all(|&a| a),
                TimerPc::Done => false,
            }
        } else {
            self.mutex.free()
        }
    }

    fn step(&mut self, tid: usize) -> Step {
        let mut accesses = Vec::new();
        let label;
        if tid == 0 {
            match self.timer {
                TimerPc::Peek { round } => {
                    // The seeded bug: occupancy read outside the lock.
                    accesses.push(Access::read(PENDING));
                    let observed = self.pending.len() as u64;
                    self.timer = TimerPc::Seal { round, observed };
                    label = format!("linger fires: peeked occupancy {observed} (no lock)");
                }
                TimerPc::Seal { round, observed } => {
                    accesses.push(self.mutex.acquire(0));
                    accesses.push(Access::write(PENDING));
                    let (sealed, why) = if self.cfg.mutant_stale_seal {
                        (observed > 0, "stale occupancy")
                    } else {
                        (!self.pending.is_empty(), "occupancy re-checked")
                    };
                    let n = self.pending.len();
                    if sealed {
                        self.seal();
                    }
                    accesses.push(self.mutex.release(0));
                    self.next_round(round);
                    label = if sealed {
                        format!("linger seal ({why}): batch of {n}")
                    } else {
                        "linger seal skipped: empty".to_string()
                    };
                }
                TimerPc::Flush => {
                    accesses.push(self.mutex.acquire(0));
                    accesses.push(Access::write(PENDING));
                    let n = self.pending.len();
                    if n > 0 {
                        self.seal();
                    }
                    accesses.push(self.mutex.release(0));
                    self.timer = TimerPc::Done;
                    label = format!("quiescent flush: batch of {n}");
                }
                TimerPc::Done => unreachable!("stepping a done timer"),
            }
        } else {
            accesses.push(self.mutex.acquire(tid));
            accesses.push(Access::write(PENDING));
            let seq = self.next_seq;
            self.next_seq += 1;
            self.pending.push(seq);
            let full = self.pending.len() >= self.cfg.max_batch;
            if full {
                self.seal();
            }
            accesses.push(self.mutex.release(tid));
            self.arrived[tid - 1] = true;
            label = if full {
                format!("arrive({seq}) seals on full")
            } else {
                format!("arrive({seq})")
            };
        }
        Step { label, accesses }
    }

    fn check(&self) -> Result<(), String> {
        if let Some(v) = &self.violation {
            return Err(v.clone());
        }
        if self.pending.len() >= self.cfg.max_batch {
            return Err(format!(
                "pending buffer reached {} without sealing (max_batch {})",
                self.pending.len(),
                self.cfg.max_batch
            ));
        }
        for (i, b) in self.sealed.iter().enumerate() {
            if b.is_empty() {
                return Err(format!(
                    "sealed batch {i} is empty: occupancy not re-checked under the lock"
                ));
            }
            if b.len() > self.cfg.max_batch {
                return Err(format!("sealed batch {i} holds {} members", b.len()));
            }
            if b.windows(2).any(|w| w[0] >= w[1]) {
                return Err(format!("sealed batch {i} is out of arrival order: {b:?}"));
            }
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        if !self.pending.is_empty() {
            return Err(format!(
                "{} requests left pending at quiescence",
                self.pending.len()
            ));
        }
        let mut seen: Vec<u64> = self.sealed.iter().flatten().copied().collect();
        seen.sort_unstable();
        let expect: Vec<u64> = (0..self.cfg.arrivals as u64).collect();
        if seen != expect {
            return Err(format!(
                "batches do not partition the arrivals: sealed {seen:?}, expected {expect:?}"
            ));
        }
        Ok(())
    }

    fn snapshot(&self, out: &mut Vec<u64>) {
        self.mutex.snapshot(out);
        out.push(self.pending.len() as u64);
        out.extend(self.pending.iter().copied());
        out.push(self.sealed.len() as u64);
        for b in &self.sealed {
            out.push(b.len() as u64);
            out.extend(b.iter().copied());
        }
        out.push(self.next_seq);
        let (tag, round, observed) = match self.timer {
            TimerPc::Peek { round } => (1, round as u64, 0),
            TimerPc::Seal { round, observed } => (2, round as u64, observed),
            TimerPc::Flush => (3, 0, 0),
            TimerPc::Done => (0, 0, 0),
        };
        out.push(tag);
        out.push(round);
        out.push(observed);
        out.push(
            self.arrived
                .iter()
                .enumerate()
                .fold(0u64, |m, (i, &a)| m | (u64::from(a) << i)),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};

    #[test]
    fn seal_linger_discipline_passes_exhaustively() {
        let r = explore(
            &BatcherModel::new(BatcherConfig::default_property()),
            &ExploreConfig::default(),
        );
        assert!(r.passed(), "{}", r.failure.unwrap().render());
    }

    #[test]
    fn stale_seal_mutant_seals_an_empty_batch() {
        let r = explore(
            &BatcherModel::new(BatcherConfig {
                mutant_stale_seal: true,
                ..BatcherConfig::default_property()
            }),
            &ExploreConfig::default(),
        );
        let f = r.failure.expect("stale seal must fail");
        assert!(f.reason.contains("empty"), "{}", f.reason);
    }
}
