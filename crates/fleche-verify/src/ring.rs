//! Model of the prep→execute pipeline ring.
//!
//! The real hand-off is a `std::sync::mpsc::sync_channel(depth)` between
//! each worker's prep stage and its executor
//! (`fleche_model::concurrent`), whose happens-before contract the race
//! checker replays as *publish* edges (send → recv of the same batch)
//! and *credit* edges (recv of batch `n` → send of batch `n + depth`,
//! the backpressure that keeps the producer from lapping the ring).
//! The model makes the ring explicit: `depth` slots written in
//! generation order, a published counter, a consumed counter acting as
//! the credit return.
//!
//! Checked: the consumer receives every batch in order with the
//! generation it was published under — a producer that writes a slot
//! whose previous occupant was not yet consumed (the credit edge
//! dropped) is an overrun and fails the generation match.

use crate::explore::{Access, Model, Step};
use crate::sync::Atomic;

/// Model configuration.
#[derive(Clone, Copy, Debug)]
pub struct RingConfig {
    /// Ring depth. The shipped property uses the real front-end's
    /// [`fleche_model::concurrent::DEFAULT_PIPELINE_DEPTH`].
    pub depth: usize,
    /// Batches pushed through the ring.
    pub items: usize,
    /// Drop the credit edge: the producer no longer waits for slot
    /// reuse permission.
    pub mutant_no_credit: bool,
}

impl RingConfig {
    /// The shipped property configuration: the real pipeline depth,
    /// twice-depth-plus-one batches so laps are reachable.
    pub fn default_property() -> RingConfig {
        RingConfig {
            depth: fleche_model::concurrent::DEFAULT_PIPELINE_DEPTH,
            items: 2 * fleche_model::concurrent::DEFAULT_PIPELINE_DEPTH + 1,
            mutant_no_credit: false,
        }
    }
}

const PUBLISHED: u64 = 64;
const CONSUMED: u64 = 65;
fn slot_res(i: usize) -> u64 {
    66 + i as u64
}

/// Sentinel generation for a never-written slot.
const EMPTY: u64 = u64::MAX;

/// The ring model. Thread 0 is the prep (producer) stage, thread 1 the
/// executor (consumer).
#[derive(Clone, Debug)]
pub struct RingModel {
    cfg: RingConfig,
    /// Generation stamp last written into each slot.
    slots: Vec<u64>,
    published: Atomic,
    consumed: Atomic,
    /// Producer: next generation to write, and whether the write has
    /// happened but not yet been published.
    next_gen: u64,
    wrote_unpublished: bool,
    violation: Option<String>,
}

impl RingModel {
    /// Builds the model.
    pub fn new(cfg: RingConfig) -> RingModel {
        assert!(cfg.depth > 0 && cfg.items > 0);
        RingModel {
            cfg,
            slots: vec![EMPTY; cfg.depth],
            published: Atomic::new(PUBLISHED, 0),
            consumed: Atomic::new(CONSUMED, 0),
            next_gen: 0,
            wrote_unpublished: false,
            violation: None,
        }
    }
}

impl Model for RingModel {
    fn thread_count(&self) -> usize {
        2
    }

    fn thread_name(&self, tid: usize) -> String {
        if tid == 0 { "prep" } else { "exec" }.to_string()
    }

    fn done(&self, tid: usize) -> bool {
        if tid == 0 {
            self.next_gen as usize >= self.cfg.items && !self.wrote_unpublished
        } else {
            self.consumed.peek() as usize >= self.cfg.items
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        if tid == 0 {
            if self.wrote_unpublished {
                return true; // the publish step never blocks
            }
            // The credit gate: a slot may be rewritten only once its
            // previous occupant was consumed.
            self.cfg.mutant_no_credit
                || self.next_gen - self.consumed.peek() < self.cfg.depth as u64
        } else {
            self.consumed.peek() < self.published.peek()
        }
    }

    fn step(&mut self, tid: usize) -> Step {
        let mut accesses = Vec::new();
        let label;
        if tid == 0 {
            if self.wrote_unpublished {
                accesses.push(self.published.store(self.next_gen + 1));
                label = format!("publish {}", self.next_gen);
                self.next_gen += 1;
                self.wrote_unpublished = false;
            } else {
                // The enabling credit check reads the consumed counter.
                accesses.push(self.consumed.load().1);
                let slot = self.next_gen as usize % self.cfg.depth;
                self.slots[slot] = self.next_gen;
                accesses.push(Access::write(slot_res(slot)));
                label = format!("write gen {} -> slot {slot}", self.next_gen);
                self.wrote_unpublished = true;
            }
        } else {
            let (seq, acc) = self.consumed.load();
            accesses.push(acc);
            accesses.push(self.published.load().1);
            let slot = seq as usize % self.cfg.depth;
            let gen = self.slots[slot];
            accesses.push(Access::read(slot_res(slot)));
            if gen != seq {
                self.violation = Some(format!(
                    "ring overrun: slot {slot} holds generation {} where {seq} was expected \
                     (the producer lapped an unconsumed slot)",
                    if gen == EMPTY { -1i64 } else { gen as i64 }
                ));
            }
            accesses.push(self.consumed.store(seq + 1));
            label = format!("recv gen {seq} <- slot {slot}");
        }
        Step { label, accesses }
    }

    fn check(&self) -> Result<(), String> {
        self.violation.clone().map_or(Ok(()), Err)
    }

    fn check_final(&self) -> Result<(), String> {
        let consumed = self.consumed.peek();
        if consumed as usize != self.cfg.items {
            return Err(format!(
                "consumer received {consumed} of {} batches",
                self.cfg.items
            ));
        }
        Ok(())
    }

    fn snapshot(&self, out: &mut Vec<u64>) {
        out.extend(self.slots.iter().copied());
        self.published.snapshot(out);
        self.consumed.snapshot(out);
        out.push(self.next_gen);
        out.push(u64::from(self.wrote_unpublished));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};

    #[test]
    fn credit_edge_protocol_passes_exhaustively() {
        let r = explore(
            &RingModel::new(RingConfig::default_property()),
            &ExploreConfig::default(),
        );
        assert!(r.passed(), "{}", r.failure.unwrap().render());
    }

    #[test]
    fn dropping_the_credit_edge_overruns() {
        let r = explore(
            &RingModel::new(RingConfig {
                mutant_no_credit: true,
                ..RingConfig::default_property()
            }),
            &ExploreConfig::default(),
        );
        let f = r.failure.expect("no-credit must overrun");
        assert!(f.reason.contains("ring overrun"), "{}", f.reason);
    }
}
