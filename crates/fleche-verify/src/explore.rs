//! The exhaustive interleaving explorer.
//!
//! A [`Model`] is a small clonable state machine: a fixed set of logical
//! threads, each advancing through atomic steps. The explorer runs a
//! depth-first search over every schedule (which enabled thread steps
//! next), checking the model's invariants after every step and its final
//! predicate at termination. Three standard reductions keep the search
//! tractable without giving up soundness:
//!
//! * **Sleep-set dynamic partial-order reduction** — after exploring
//!   thread `t` from a state, `t` joins the *sleep set* for the sibling
//!   branches; a sleeping thread is skipped until some executed step is
//!   *dependent* on its next step (touches a conflicting resource), at
//!   which point it wakes. Commuting interleavings of independent steps
//!   are explored once.
//! * **State memoization** — a search node is keyed by the model's
//!   canonical [`Model::snapshot`] *plus* the scheduling context (last
//!   thread, preemption budget spent, sleep set). Re-reaching an
//!   identical node proves the whole subtree already passed. Including
//!   the context in the key is what keeps memoization sound next to
//!   sleep sets and preemption bounds.
//! * **Optional bounded preemption** — with
//!   [`ExploreConfig::max_preemptions`] set, schedules that switch away
//!   from a still-runnable thread more than the bound are skipped. The
//!   shipped protocol properties run *unbounded* (fully exhaustive); the
//!   bound exists for scaling experiments on larger configs.
//!
//! Exploration order is deterministic and seed-free: enabled threads are
//! tried in ascending id order, and nothing in the search reads a clock,
//! a hash iterator, or an RNG — two runs produce identical statistics,
//! which `tests/verify_props.rs` asserts.

use std::collections::HashMap;

/// One resource touched by a step, for independence checking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Model-chosen resource id (a mutex, a condvar, a ring slot, ...).
    pub resource: u64,
    /// True for writes (and read-modify-writes), false for pure reads.
    pub write: bool,
}

impl Access {
    /// A read of `resource`.
    pub fn read(resource: u64) -> Access {
        Access {
            resource,
            write: false,
        }
    }

    /// A write of `resource`.
    pub fn write(resource: u64) -> Access {
        Access {
            resource,
            write: true,
        }
    }
}

/// True when two footprints conflict: same resource, at least one write.
fn conflicts(a: &[Access], b: &[Access]) -> bool {
    a.iter().any(|x| {
        b.iter()
            .any(|y| x.resource == y.resource && (x.write || y.write))
    })
}

/// The result of one executed step: a human-readable label (used in
/// counterexample traces) and the resources it touched.
#[derive(Clone, Debug)]
pub struct Step {
    /// What the thread did, e.g. `push(2) -> lane 0`.
    pub label: String,
    /// Footprint for dependence checking.
    pub accesses: Vec<Access>,
}

/// A protocol model the explorer can drive.
///
/// Contract: `step(tid)` is only called when `enabled(tid)` and not
/// `done(tid)`; it must advance exactly one atomic action. Enabledness
/// may depend only on state that the enabling steps declare in their
/// footprints (e.g. a blocked acquirer reads the mutex resource) — that
/// is what makes the sleep-set reduction sound.
pub trait Model: Clone {
    /// Number of logical threads (fixed for the model's lifetime).
    fn thread_count(&self) -> usize;
    /// Short name for thread `tid`, used in traces.
    fn thread_name(&self, tid: usize) -> String;
    /// True when thread `tid` has no more steps.
    fn done(&self, tid: usize) -> bool;
    /// True when thread `tid` can take a step right now.
    fn enabled(&self, tid: usize) -> bool;
    /// Advances thread `tid` by one atomic step.
    fn step(&mut self, tid: usize) -> Step;
    /// Invariant checked after every step.
    fn check(&self) -> Result<(), String>;
    /// Predicate checked when every thread is done.
    fn check_final(&self) -> Result<(), String>;
    /// Canonical encoding of the model state (threads + data). Equal
    /// snapshots must mean equal future behavior.
    fn snapshot(&self, out: &mut Vec<u64>);
}

/// Search limits and bounds.
#[derive(Clone, Copy, Debug)]
pub struct ExploreConfig {
    /// `None` explores every schedule (fully exhaustive). `Some(k)`
    /// skips schedules with more than `k` preemptions.
    pub max_preemptions: Option<u32>,
    /// Hard cap on distinct search nodes; exceeding it is an error (the
    /// model is bigger than exhaustive checking can afford).
    pub max_states: u64,
    /// Hard cap on steps along one execution; exceeding it means the
    /// model can livelock (every loop must pass through a blocking
    /// point).
    pub max_depth: u32,
}

impl Default for ExploreConfig {
    fn default() -> ExploreConfig {
        ExploreConfig {
            max_preemptions: None,
            max_states: 20_000_000,
            max_depth: 10_000,
        }
    }
}

/// Search statistics, deterministic across runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct search nodes expanded.
    pub states: u64,
    /// Steps executed (including re-executions on different branches).
    pub transitions: u64,
    /// Nodes pruned because an identical (state, context) was proven.
    pub memo_hits: u64,
    /// Branches skipped by the sleep-set reduction.
    pub sleep_skips: u64,
    /// Branches skipped by the preemption bound (0 when unbounded).
    pub preemption_skips: u64,
    /// Complete terminal executions checked.
    pub complete_runs: u64,
    /// Longest execution, in steps.
    pub max_depth_seen: u32,
}

/// One entry of a counterexample schedule.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// Thread id that stepped.
    pub tid: usize,
    /// Thread name at the time of the step.
    pub thread: String,
    /// The step's label.
    pub label: String,
}

/// A property violation: why, and the exact schedule reaching it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// The violated invariant (or `deadlock: ...`).
    pub reason: String,
    /// The schedule from the initial state to the violation.
    pub trace: Vec<TraceStep>,
}

impl Failure {
    /// Renders the counterexample as an indented schedule listing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("  violation: {}\n", self.reason));
        for (i, s) in self.trace.iter().enumerate() {
            out.push_str(&format!("    {:>3}. [{}] {}\n", i + 1, s.thread, s.label));
        }
        out
    }
}

/// Outcome of exhausting the schedule space.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    /// First violation found in deterministic search order, if any.
    pub failure: Option<Failure>,
    /// Search statistics.
    pub stats: ExploreStats,
}

impl ExploreResult {
    /// True when every schedule satisfied every property.
    pub fn passed(&self) -> bool {
        self.failure.is_none()
    }
}

/// Explores every schedule of `model` under `config`.
pub fn explore<M: Model>(model: &M, config: &ExploreConfig) -> ExploreResult {
    let mut search = Search {
        config: *config,
        stats: ExploreStats::default(),
        // The memo only answers membership queries (never iterated), so
        // the hasher's per-process randomization cannot leak into any
        // reported number.
        memo: HashMap::new(),
        trace: Vec::new(),
    };
    let failure = search.dfs(model, None, 0, 0).err();
    ExploreResult {
        failure,
        stats: search.stats,
    }
}

struct Search {
    config: ExploreConfig,
    stats: ExploreStats,
    /// Key: canonical snapshot ++ [last thread + 1, preemptions, sleep
    /// bitmask]. Value-less set semantics (the value is `()`).
    memo: HashMap<Vec<u64>, ()>,
    trace: Vec<TraceStep>,
}

impl Search {
    fn fail(&self, reason: String) -> Failure {
        Failure {
            reason,
            trace: self.trace.clone(),
        }
    }

    /// DFS from the current model state. `sleep` is a bitmask over
    /// thread ids (models are far below 64 threads).
    fn dfs<M: Model>(
        &mut self,
        model: &M,
        last: Option<usize>,
        preemptions: u32,
        sleep: u64,
    ) -> Result<(), Failure> {
        let n = model.thread_count();
        debug_assert!(n <= 64, "sleep sets are a u64 bitmask");
        let enabled: Vec<usize> = (0..n)
            .filter(|&t| !model.done(t) && model.enabled(t))
            .collect();
        if enabled.is_empty() {
            return if (0..n).all(|t| model.done(t)) {
                self.stats.complete_runs += 1;
                model.check_final().map_err(|e| self.fail(e))
            } else {
                let stuck: Vec<String> = (0..n)
                    .filter(|&t| !model.done(t))
                    .map(|t| model.thread_name(t))
                    .collect();
                Err(self.fail(format!(
                    "deadlock: no thread can run, blocked: {}",
                    stuck.join(", ")
                )))
            };
        }

        let mut key = Vec::with_capacity(16);
        model.snapshot(&mut key);
        key.push(last.map_or(0, |t| t as u64 + 1));
        key.push(preemptions as u64);
        key.push(sleep);
        if self.memo.contains_key(&key) {
            self.stats.memo_hits += 1;
            return Ok(());
        }
        self.stats.states += 1;
        if self.stats.states > self.config.max_states {
            return Err(self.fail(format!(
                "state-space bound exceeded ({} states): shrink the model config",
                self.config.max_states
            )));
        }
        if self.trace.len() as u32 > self.config.max_depth {
            return Err(self.fail(format!(
                "depth bound exceeded ({} steps): the model can livelock",
                self.config.max_depth
            )));
        }
        self.stats.max_depth_seen = self.stats.max_depth_seen.max(self.trace.len() as u32);

        // Footprint of each enabled thread's *next* step, probed on a
        // clone. Used both to wake sleeping threads (dependence) and to
        // keep the sleep set sound across the recursion.
        let probes: Vec<(usize, Step)> = enabled
            .iter()
            .map(|&t| {
                let mut probe = model.clone();
                (t, probe.step(t))
            })
            .collect();
        let footprint =
            |t: usize| -> &Step { &probes.iter().find(|(p, _)| *p == t).expect("probed").1 };

        let mut sleep_here = sleep;
        for &t in &enabled {
            if sleep_here & (1u64 << t) != 0 {
                self.stats.sleep_skips += 1;
                continue;
            }
            let is_preemption = last.is_some_and(|l| l != t && !model.done(l) && model.enabled(l));
            let next_preemptions = preemptions + u32::from(is_preemption);
            if let Some(bound) = self.config.max_preemptions {
                if is_preemption && preemptions >= bound {
                    self.stats.preemption_skips += 1;
                    continue;
                }
            }

            let mut child = model.clone();
            let step = child.step(t);
            self.stats.transitions += 1;
            self.trace.push(TraceStep {
                tid: t,
                thread: model.thread_name(t),
                label: step.label.clone(),
            });
            child.check().map_err(|e| self.fail(e))?;

            // A sleeping sibling stays asleep only while the executed
            // step is independent of its next step.
            let mut child_sleep = 0u64;
            for &s in &enabled {
                if s != t
                    && sleep_here & (1u64 << s) != 0
                    && !conflicts(&step.accesses, &footprint(s).accesses)
                {
                    child_sleep |= 1u64 << s;
                }
            }
            self.dfs(&child, Some(t), next_preemptions, child_sleep)?;
            self.trace.pop();
            sleep_here |= 1u64 << t;
        }

        self.memo.insert(key, ());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two threads increment a shared counter twice each, non-atomically
    /// (read step, then write step). The lost-update outcome must be
    /// reachable, proving the explorer really interleaves.
    #[derive(Clone)]
    struct Racey {
        counter: u64,
        // Per thread: (phase 0 = load, 1 = store, 2+ = done-ish), loaded
        // value, increments remaining.
        pc: [(u8, u64, u8); 2],
        require_exact: bool,
    }

    impl Model for Racey {
        fn thread_count(&self) -> usize {
            2
        }
        fn thread_name(&self, tid: usize) -> String {
            format!("inc{tid}")
        }
        fn done(&self, tid: usize) -> bool {
            self.pc[tid].0 == 0 && self.pc[tid].2 == 0
        }
        fn enabled(&self, _tid: usize) -> bool {
            true
        }
        fn step(&mut self, tid: usize) -> Step {
            let (phase, loaded, left) = self.pc[tid];
            if phase == 0 {
                self.pc[tid] = (1, self.counter, left);
                Step {
                    label: format!("load {}", self.counter),
                    accesses: vec![Access::read(1)],
                }
            } else {
                self.counter = loaded + 1;
                self.pc[tid] = (0, 0, left - 1);
                Step {
                    label: format!("store {}", loaded + 1),
                    accesses: vec![Access::write(1)],
                }
            }
        }
        fn check(&self) -> Result<(), String> {
            Ok(())
        }
        fn check_final(&self) -> Result<(), String> {
            if self.require_exact && self.counter != 4 {
                return Err(format!("lost update: counter = {}", self.counter));
            }
            Ok(())
        }
        fn snapshot(&self, out: &mut Vec<u64>) {
            out.push(self.counter);
            for &(a, b, c) in &self.pc {
                out.push(a as u64);
                out.push(b);
                out.push(c as u64);
            }
        }
    }

    fn racey(require_exact: bool) -> Racey {
        Racey {
            counter: 0,
            pc: [(0, 0, 2), (0, 0, 2)],
            require_exact: false,
        }
        .with_exact(require_exact)
    }

    impl Racey {
        fn with_exact(mut self, e: bool) -> Racey {
            self.require_exact = e;
            self
        }
    }

    #[test]
    fn finds_the_lost_update() {
        let r = explore(&racey(true), &ExploreConfig::default());
        let f = r.failure.expect("lost update must be reachable");
        assert!(f.reason.contains("lost update"), "{}", f.reason);
        assert!(!f.trace.is_empty());
    }

    #[test]
    fn tolerant_final_predicate_passes_and_is_deterministic() {
        let a = explore(&racey(false), &ExploreConfig::default());
        let b = explore(&racey(false), &ExploreConfig::default());
        assert!(a.passed());
        assert_eq!(a.stats.states, b.stats.states);
        assert_eq!(a.stats.transitions, b.stats.transitions);
        assert_eq!(a.stats.sleep_skips, b.stats.sleep_skips);
    }

    #[test]
    fn dpor_agrees_with_unreduced_search_on_the_verdict() {
        // Disabling the reductions entirely is not configurable (they
        // are always on), but a single-threaded model makes them no-ops;
        // here we instead check the racy verdict is stable under the
        // preemption bound relaxing from tight to unbounded.
        for bound in [Some(1), Some(2), None] {
            let cfg = ExploreConfig {
                max_preemptions: bound,
                ..ExploreConfig::default()
            };
            let r = explore(&racey(true), &cfg);
            assert!(
                r.failure.is_some(),
                "lost update needs only one preemption, bound {bound:?}"
            );
        }
    }

    #[test]
    fn preemption_bound_zero_serializes() {
        // With zero preemptions each thread runs to completion once
        // scheduled: both serializations yield counter == 4.
        let cfg = ExploreConfig {
            max_preemptions: Some(0),
            ..ExploreConfig::default()
        };
        let r = explore(&racey(true), &cfg);
        assert!(r.passed(), "{:?}", r.failure);
        assert!(r.stats.preemption_skips > 0);
    }
}
