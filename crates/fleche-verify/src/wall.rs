//! The one place in the verifier allowed to read the wall clock.
//!
//! Exploration itself is deterministic and clock-free; wall times exist
//! only to report how long each property took, and they go to stderr
//! and the JSON bench record — never to the byte-diffed stdout report.
//! The `no-wall-clock` analyzer allow for this file is reviewed in
//! `fleche-analyzer.toml`.

use std::time::Instant;

/// A started stopwatch.
#[derive(Debug)]
pub struct WallTimer {
    start: Instant,
}

impl WallTimer {
    /// Starts the stopwatch.
    #[allow(clippy::new_without_default)]
    pub fn new() -> WallTimer {
        WallTimer {
            start: Instant::now(),
        }
    }

    /// Elapsed milliseconds since the start.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }
}
