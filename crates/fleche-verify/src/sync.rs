//! Modeled synchronization primitives.
//!
//! These shims mirror the semantics of `std::sync::{Mutex, Condvar}` and
//! the atomics the real protocols use, but as plain data inside a
//! [`Model`](crate::explore::Model): the explorer decides when a blocked
//! thread resumes, so every legal wakeup order is explored. Each
//! operation reports its footprint as [`Access`]es on a caller-chosen
//! resource id, which is what the sleep-set reduction keys independence
//! on.
//!
//! Faithfulness notes:
//!
//! * [`Condvar::notify_one`] with no registered waiter is a no-op — the
//!   signal is *lost*, exactly like the real primitive. A model that
//!   checks its predicate before registering as a waiter will deadlock
//!   under some schedule, and the explorer reports it.
//! * A woken waiter does not hold the mutex: it moves to a *wakeable*
//!   set and must re-acquire before touching state, so another thread
//!   can barge in between the notify and the wakeup — the schedule that
//!   breaks `if`-based wait conditions.
//! * Spurious wakeups are not modeled; the barging behavior above
//!   already forces the re-check discipline that spurious wakeups
//!   defend against.

use crate::explore::Access;

/// A modeled mutex: just the holder, plus a resource id for footprints.
#[derive(Clone, Debug)]
pub struct Mutex {
    id: u64,
    holder: Option<usize>,
}

impl Mutex {
    /// A free mutex with footprint resource `id`.
    pub fn new(id: u64) -> Mutex {
        Mutex { id, holder: None }
    }

    /// True when no thread holds the mutex (the enabledness test for an
    /// acquiring step).
    pub fn free(&self) -> bool {
        self.holder.is_none()
    }

    /// Acquires for `tid`. Caller must have checked [`Mutex::free`].
    pub fn acquire(&mut self, tid: usize) -> Access {
        debug_assert!(self.holder.is_none(), "acquire of a held mutex");
        self.holder = Some(tid);
        Access::write(self.id)
    }

    /// Releases. Caller must hold the mutex.
    pub fn release(&mut self, tid: usize) -> Access {
        debug_assert_eq!(self.holder, Some(tid), "release by a non-holder");
        self.holder = None;
        Access::write(self.id)
    }

    /// The mutex's footprint resource (for enabledness reads).
    pub fn resource(&self) -> u64 {
        self.id
    }

    /// Canonical encoding for [`Model::snapshot`](crate::explore::Model::snapshot).
    pub fn snapshot(&self, out: &mut Vec<u64>) {
        out.push(self.holder.map_or(0, |t| t as u64 + 1));
    }
}

/// A modeled condition variable: who is waiting, who has been woken but
/// not yet resumed.
#[derive(Clone, Debug)]
pub struct Condvar {
    id: u64,
    /// Threads blocked in `wait` (sorted: wakeup picks the lowest id,
    /// keeping exploration order deterministic; the explorer still
    /// interleaves every *resume* order via the wakeable set).
    waiting: Vec<usize>,
    /// Threads notified but not yet re-acquired the mutex.
    wakeable: Vec<usize>,
}

impl Condvar {
    /// A condvar with footprint resource `id`.
    pub fn new(id: u64) -> Condvar {
        Condvar {
            id,
            waiting: Vec::new(),
            wakeable: Vec::new(),
        }
    }

    /// Registers `tid` as a waiter. The caller's step must also release
    /// the guard mutex (wait is atomically release-and-block).
    pub fn wait_begin(&mut self, tid: usize) -> Access {
        debug_assert!(!self.waiting.contains(&tid));
        self.waiting.push(tid);
        self.waiting.sort_unstable();
        Access::write(self.id)
    }

    /// Wakes the lowest-id waiter, if any; a notify with nobody waiting
    /// is lost.
    pub fn notify_one(&mut self) -> Access {
        if !self.waiting.is_empty() {
            let t = self.waiting.remove(0);
            self.wakeable.push(t);
            self.wakeable.sort_unstable();
        }
        Access::write(self.id)
    }

    /// Wakes every waiter.
    pub fn notify_all(&mut self) -> Access {
        self.wakeable.append(&mut self.waiting);
        self.wakeable.sort_unstable();
        Access::write(self.id)
    }

    /// True when `tid` has been woken and may try to re-acquire.
    pub fn woken(&self, tid: usize) -> bool {
        self.wakeable.contains(&tid)
    }

    /// Consumes `tid`'s wakeup (call when it re-acquires the mutex).
    pub fn resume(&mut self, tid: usize) -> Access {
        self.wakeable.retain(|&t| t != tid);
        Access::write(self.id)
    }

    /// The condvar's footprint resource.
    pub fn resource(&self) -> u64 {
        self.id
    }

    /// Canonical encoding for snapshots.
    pub fn snapshot(&self, out: &mut Vec<u64>) {
        out.push(self.waiting.iter().fold(0u64, |m, &t| m | (1 << t)));
        out.push(self.wakeable.iter().fold(0u64, |m, &t| m | (1 << t)));
    }
}

/// A modeled atomic counter (`AtomicU64`-shaped).
#[derive(Clone, Debug)]
pub struct Atomic {
    id: u64,
    value: u64,
}

impl Atomic {
    /// An atomic with initial `value` and footprint resource `id`.
    pub fn new(id: u64, value: u64) -> Atomic {
        Atomic { id, value }
    }

    /// Atomic load.
    pub fn load(&self) -> (u64, Access) {
        (self.value, Access::read(self.id))
    }

    /// The current value without a footprint — for enabledness tests
    /// only; the enabling step must still record a load.
    pub fn peek(&self) -> u64 {
        self.value
    }

    /// Atomic store.
    pub fn store(&mut self, value: u64) -> Access {
        self.value = value;
        Access::write(self.id)
    }

    /// Atomic fetch-add, returning the previous value.
    pub fn fetch_add(&mut self, delta: u64) -> (u64, Access) {
        let prev = self.value;
        self.value += delta;
        (prev, Access::write(self.id))
    }

    /// The atomic's footprint resource.
    pub fn resource(&self) -> u64 {
        self.id
    }

    /// Canonical encoding for snapshots.
    pub fn snapshot(&self, out: &mut Vec<u64>) {
        out.push(self.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notify_with_no_waiter_is_lost() {
        let mut cv = Condvar::new(7);
        cv.notify_one();
        cv.wait_begin(0);
        assert!(!cv.woken(0), "the earlier notify must not be banked");
        cv.notify_one();
        assert!(cv.woken(0));
        cv.resume(0);
        assert!(!cv.woken(0));
    }

    #[test]
    fn notify_one_wakes_lowest_id() {
        let mut cv = Condvar::new(7);
        cv.wait_begin(3);
        cv.wait_begin(1);
        cv.notify_one();
        assert!(cv.woken(1));
        assert!(!cv.woken(3));
    }

    #[test]
    fn mutex_tracks_holder() {
        let mut m = Mutex::new(1);
        assert!(m.free());
        m.acquire(2);
        assert!(!m.free());
        m.release(2);
        assert!(m.free());
    }
}
