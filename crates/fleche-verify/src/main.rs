//! CLI for the schedule-space checker.
//!
//! `cargo run -p fleche-verify` explores every registered property and
//! mutant exhaustively and prints a deterministic report to stdout
//! (wall times go to stderr so the report byte-diffs cleanly in CI).
//! Exit 0 when every property passes and every mutant is caught; exit 1
//! otherwise, with counterexample traces printed for any property
//! failure or surviving mutant. `--traces` also prints the (expected)
//! counterexample for each caught mutant.

use fleche_verify::explore::ExploreConfig;
use fleche_verify::run_all;

fn main() {
    let mut traces = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--traces" => traces = true,
            "--help" | "-h" => {
                println!("usage: fleche-verify [--traces]");
                return;
            }
            other => {
                eprintln!("fleche-verify: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let config = ExploreConfig::default();
    let report = run_all(&config);

    println!("fleche-verify: exhaustive schedule-space check");
    println!();
    println!("properties (must pass under every interleaving):");
    for p in &report.properties {
        let verdict = if p.failure.is_none() { "pass" } else { "FAIL" };
        println!(
            "  {verdict}  {:<38} states {:>7}  pruned {:>7}  runs {:>6}",
            p.name,
            p.stats.states,
            p.stats.memo_hits + p.stats.sleep_skips,
            p.stats.complete_runs
        );
        eprintln!("  [wall] {}: {:.1} ms", p.name, p.wall_ms);
    }
    println!();
    println!("mutants (seeded bugs the checker must catch):");
    for m in &report.mutants {
        let verdict = if m.caught() { "caught" } else { "MISSED" };
        println!(
            "  {verdict}  {:<38} states {:>7}  expects `{}`",
            m.name, m.stats.states, m.expect
        );
        eprintln!("  [wall] {}: {:.1} ms", m.name, m.wall_ms);
    }

    let mut failed = false;
    for p in &report.properties {
        if let Some(f) = &p.failure {
            failed = true;
            println!();
            println!("counterexample for property {}:", p.name);
            print!("{}", f.render());
        }
    }
    for m in &report.mutants {
        match &m.failure {
            Some(f) if !m.caught() => {
                failed = true;
                println!();
                println!(
                    "mutant {} failed, but not as expected (wanted `{}`):",
                    m.name, m.expect
                );
                print!("{}", f.render());
            }
            None => {
                failed = true;
                println!();
                println!(
                    "mutant {} survived exploration: the checker cannot see its bug",
                    m.name
                );
            }
            Some(f) if traces => {
                println!();
                println!("counterexample for mutant {} (expected):", m.name);
                print!("{}", f.render());
            }
            Some(_) => {}
        }
    }

    println!();
    if failed {
        println!("fleche-verify: FAILED");
        std::process::exit(1);
    }
    println!(
        "fleche-verify: all {} properties hold, all {} mutants caught",
        report.properties.len(),
        report.mutants.len()
    );
}
