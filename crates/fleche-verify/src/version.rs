//! Model of batch-boundary update visibility.
//!
//! The real rule (PR 5): trainer pushes stage into a buffer
//! (`FlecheSystem::push_updates`) and only `commit_updates` — called at
//! a batch boundary — applies them to cache slots, version-monotonically
//! (`FlatCache::apply_updates` keeps the maximum version per slot). A
//! batch in flight therefore reads a frozen version vector: no torn
//! reads, and versions never regress.
//!
//! The model runs a server thread (begin batch → reads → end batch,
//! repeated) against an updater thread staging out-of-order versions.
//! Checked: every read inside a batch sees the version the batch began
//! with; applied versions never regress; at quiescence every slot holds
//! the maximum staged version.

use crate::explore::{Access, Model, Step};
use std::collections::VecDeque;

/// Which deliberate bug to build in, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VersionMutant {
    /// The faithful boundary rule.
    None,
    /// The updater applies to slots immediately instead of staging —
    /// a batch in flight sees versions move.
    MidBatchApply,
    /// The boundary apply writes the staged version blindly instead of
    /// keeping the per-slot maximum — reordered updates regress.
    BlindWrite,
}

/// Model configuration.
#[derive(Clone, Debug)]
pub struct VersionConfig {
    /// Slot count.
    pub slots: usize,
    /// `(slot, version)` pushes, in trainer order — deliberately
    /// including an out-of-order pair to exercise max-wins.
    pub updates: Vec<(usize, u64)>,
    /// Batches the server runs.
    pub batches: usize,
    /// Slot reads per batch.
    pub reads_per_batch: usize,
    /// Seeded bug.
    pub mutant: VersionMutant,
}

impl VersionConfig {
    /// The shipped property configuration: two slots, a reordered
    /// version pair on slot 0, two batches of two reads.
    pub fn default_property() -> VersionConfig {
        VersionConfig {
            slots: 2,
            updates: vec![(0, 3), (0, 2), (1, 2)],
            batches: 2,
            reads_per_batch: 2,
            mutant: VersionMutant::None,
        }
    }
}

const STAGED: u64 = 90;
fn slot_res(s: usize) -> u64 {
    91 + s as u64
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ServerPc {
    Begin { batch: usize },
    Read { batch: usize, read: usize },
    End { batch: usize },
    Done,
}

/// The visibility model. Thread 0 is the serving loop, thread 1 the
/// update stream.
#[derive(Clone, Debug)]
pub struct VersionModel {
    cfg: VersionConfig,
    /// Applied per-slot versions (start at 1 = the warm-up fill).
    versions: Vec<u64>,
    /// Updates staged but not yet applied.
    staged: VecDeque<(usize, u64)>,
    /// Versions frozen at the current batch's begin.
    frozen: Vec<u64>,
    server: ServerPc,
    /// Next update the updater pushes.
    next_update: usize,
    violation: Option<String>,
}

impl VersionModel {
    /// Builds the model.
    pub fn new(cfg: VersionConfig) -> VersionModel {
        assert!(cfg.slots > 0 && cfg.batches > 0 && cfg.reads_per_batch > 0);
        assert!(cfg.updates.iter().all(|&(s, _)| s < cfg.slots));
        let versions = vec![1; cfg.slots];
        VersionModel {
            frozen: versions.clone(),
            versions,
            staged: VecDeque::new(),
            server: ServerPc::Begin { batch: 0 },
            next_update: 0,
            violation: None,
            cfg,
        }
    }
}

impl Model for VersionModel {
    fn thread_count(&self) -> usize {
        2
    }

    fn thread_name(&self, tid: usize) -> String {
        if tid == 0 { "server" } else { "updater" }.to_string()
    }

    fn done(&self, tid: usize) -> bool {
        if tid == 0 {
            self.server == ServerPc::Done
        } else {
            self.next_update >= self.cfg.updates.len()
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        if tid == 0 {
            // The final boundary waits for the stream to quiesce, so
            // the terminal state is well-defined in every schedule.
            match self.server {
                ServerPc::End { batch } if batch + 1 == self.cfg.batches => {
                    self.next_update >= self.cfg.updates.len()
                }
                ServerPc::Done => false,
                _ => true,
            }
        } else {
            true
        }
    }

    fn step(&mut self, tid: usize) -> Step {
        let mut accesses = Vec::new();
        let label;
        if tid == 0 {
            match self.server {
                ServerPc::Begin { batch } => {
                    for s in 0..self.cfg.slots {
                        accesses.push(Access::read(slot_res(s)));
                    }
                    self.frozen = self.versions.clone();
                    self.server = ServerPc::Read { batch, read: 0 };
                    label = format!("begin batch {batch}: freeze {:?}", self.frozen);
                }
                ServerPc::Read { batch, read } => {
                    let s = read % self.cfg.slots;
                    accesses.push(Access::read(slot_res(s)));
                    let seen = self.versions[s];
                    if seen != self.frozen[s] {
                        self.violation = Some(format!(
                            "torn batch: slot {s} moved from v{} to v{seen} inside batch {batch}",
                            self.frozen[s]
                        ));
                    }
                    self.server = if read + 1 < self.cfg.reads_per_batch {
                        ServerPc::Read {
                            batch,
                            read: read + 1,
                        }
                    } else {
                        ServerPc::End { batch }
                    };
                    label = format!("batch {batch} read slot {s}: v{seen}");
                }
                ServerPc::End { batch } => {
                    accesses.push(Access::write(STAGED));
                    let mut applied = 0usize;
                    while let Some((s, v)) = self.staged.pop_front() {
                        accesses.push(Access::write(slot_res(s)));
                        let old = self.versions[s];
                        let new = match self.cfg.mutant {
                            VersionMutant::BlindWrite => v,
                            _ => old.max(v),
                        };
                        if new < old {
                            self.violation = Some(format!(
                                "version regressed at batch boundary: slot {s} v{old} -> v{new}"
                            ));
                        }
                        self.versions[s] = new;
                        applied += 1;
                    }
                    self.server = if batch + 1 < self.cfg.batches {
                        ServerPc::Begin { batch: batch + 1 }
                    } else {
                        ServerPc::Done
                    };
                    label = format!("end batch {batch}: applied {applied} staged updates");
                }
                ServerPc::Done => unreachable!("stepping a done server"),
            }
        } else {
            let (s, v) = self.cfg.updates[self.next_update];
            accesses.push(Access::write(STAGED));
            self.staged.push_back((s, v));
            if self.cfg.mutant == VersionMutant::MidBatchApply {
                accesses.push(Access::write(slot_res(s)));
                self.versions[s] = self.versions[s].max(v);
            }
            self.next_update += 1;
            label = format!("push update slot {s} v{v}");
        }
        Step { label, accesses }
    }

    fn check(&self) -> Result<(), String> {
        self.violation.clone().map_or(Ok(()), Err)
    }

    fn check_final(&self) -> Result<(), String> {
        if !self.staged.is_empty() {
            return Err(format!(
                "{} staged updates never applied",
                self.staged.len()
            ));
        }
        for s in 0..self.cfg.slots {
            let want = self
                .cfg
                .updates
                .iter()
                .filter(|&&(us, _)| us == s)
                .map(|&(_, v)| v)
                .fold(1u64, u64::max);
            if self.versions[s] != want {
                return Err(format!(
                    "slot {s} quiesced at v{}, expected v{want}",
                    self.versions[s]
                ));
            }
        }
        Ok(())
    }

    fn snapshot(&self, out: &mut Vec<u64>) {
        out.extend(self.versions.iter().copied());
        out.extend(self.frozen.iter().copied());
        out.push(self.staged.len() as u64);
        for &(s, v) in &self.staged {
            out.push(s as u64);
            out.push(v);
        }
        let (tag, batch, read) = match self.server {
            ServerPc::Begin { batch } => (1, batch as u64, 0),
            ServerPc::Read { batch, read } => (2, batch as u64, read as u64),
            ServerPc::End { batch } => (3, batch as u64, 0),
            ServerPc::Done => (0, 0, 0),
        };
        out.push(tag);
        out.push(batch);
        out.push(read);
        out.push(self.next_update as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};

    #[test]
    fn boundary_rule_passes_exhaustively() {
        let r = explore(
            &VersionModel::new(VersionConfig::default_property()),
            &ExploreConfig::default(),
        );
        assert!(r.passed(), "{}", r.failure.unwrap().render());
    }

    #[test]
    fn mid_batch_apply_tears_a_batch() {
        let r = explore(
            &VersionModel::new(VersionConfig {
                mutant: VersionMutant::MidBatchApply,
                ..VersionConfig::default_property()
            }),
            &ExploreConfig::default(),
        );
        let f = r.failure.expect("mid-batch apply must tear");
        assert!(f.reason.contains("torn batch"), "{}", f.reason);
    }

    #[test]
    fn blind_write_regresses_a_version() {
        let r = explore(
            &VersionModel::new(VersionConfig {
                mutant: VersionMutant::BlindWrite,
                ..VersionConfig::default_property()
            }),
            &ExploreConfig::default(),
        );
        let f = r.failure.expect("blind write must regress");
        assert!(f.reason.contains("regressed"), "{}", f.reason);
    }
}
