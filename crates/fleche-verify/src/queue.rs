//! Model of the per-shard bounded MPMC queue
//! ([`fleche_model::ShardedQueue`]).
//!
//! The real protocol: each lane is a `Mutex<ShardState>` with two
//! condvars (`not_empty`, `not_full`); `push` waits `while` full, `pop`
//! loops pop → closed-check → wait, and `close` flips the flag and
//! notifies all. The model mirrors it with one *feeder* thread pushing
//! `items` round-robin over the lanes and then closing them (exactly the
//! serving front-end's feeder), plus `consumers` threads popping — so a
//! lane can have two consumers, which is the schedule family that breaks
//! `if`-based wait conditions.
//!
//! Checked: lane occupancy never exceeds the capacity bound, pops leave
//! each lane in exact push order (stamps are consecutive), nothing is
//! popped from an empty lane, and every schedule terminates with every
//! pushed item popped (a lost wakeup surfaces as a deadlock, which the
//! explorer reports with the schedule that loses the signal).

use crate::explore::{Access, Model, Step};
use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;

/// Which deliberate bug to build in, if any.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueMutant {
    /// The faithful protocol.
    None,
    /// Wait conditions are not re-checked after wakeup (`if` instead of
    /// `while`): a barging thread can steal the condition between the
    /// notify and the resume.
    IfWait,
    /// `pop` forgets to signal `not_full` after freeing a slot: a
    /// producer blocked on a full lane never wakes (lost wakeup).
    MissingNotify,
}

/// Model configuration.
#[derive(Clone, Copy, Debug)]
pub struct QueueConfig {
    /// Lane count (the real queue uses one per worker).
    pub lanes: usize,
    /// Per-lane capacity bound (the real bound is
    /// [`fleche_model::concurrent::DEFAULT_SHARD_CAPACITY`]; the model
    /// shrinks it so full-lane schedules are reachable).
    pub capacity: usize,
    /// Items the feeder pushes, round-robin over lanes.
    pub items: usize,
    /// Consumer threads; consumer `c` serves lane `c % lanes`.
    pub consumers: usize,
    /// Seeded bug.
    pub mutant: QueueMutant,
}

impl QueueConfig {
    /// The shipped property configuration: two lanes, capacity 1 (so
    /// producers block), four items, three consumers (lane 0 gets two —
    /// the barging schedule family).
    pub fn default_property() -> QueueConfig {
        QueueConfig {
            lanes: 2,
            capacity: 1,
            items: 4,
            consumers: 3,
            mutant: QueueMutant::None,
        }
    }
}

#[derive(Clone, Debug)]
struct Lane {
    mutex: Mutex,
    not_empty: Condvar,
    not_full: Condvar,
    /// Stamps (1-based, per lane) still queued.
    items: VecDeque<u64>,
    closed: bool,
    /// Stamps handed out so far.
    pushed: u64,
    /// Last stamp popped; FIFO means pops see `1, 2, 3, ...` exactly.
    last_popped: u64,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum FeederPc {
    /// Push item `next` (enabled when the lane mutex is free).
    Push {
        next: usize,
    },
    /// Blocked on `not_full` with `item` in hand.
    BlockedFull {
        item: usize,
    },
    /// Close lane `lane` (one step per lane, like the real `close`).
    Close {
        lane: usize,
    },
    Done,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum ConsumerPc {
    /// Try to pop (enabled when the lane mutex is free).
    Pop,
    /// Blocked on `not_empty`.
    Blocked,
    Done,
}

/// The queue model. Thread 0 is the feeder; threads `1..=consumers` are
/// consumers.
#[derive(Clone, Debug)]
pub struct QueueModel {
    cfg: QueueConfig,
    lanes: Vec<Lane>,
    feeder: FeederPc,
    consumers: Vec<ConsumerPc>,
    violation: Option<String>,
}

fn mutex_res(lane: usize) -> u64 {
    lane as u64 * 4
}
fn not_empty_res(lane: usize) -> u64 {
    lane as u64 * 4 + 1
}
fn not_full_res(lane: usize) -> u64 {
    lane as u64 * 4 + 2
}

impl QueueModel {
    /// Builds the model; panics on configs that cannot terminate (a lane
    /// that receives more items than its capacity needs a consumer).
    pub fn new(cfg: QueueConfig) -> QueueModel {
        assert!(cfg.lanes > 0 && cfg.capacity > 0 && cfg.consumers >= cfg.lanes);
        QueueModel {
            lanes: (0..cfg.lanes)
                .map(|l| Lane {
                    mutex: Mutex::new(mutex_res(l)),
                    not_empty: Condvar::new(not_empty_res(l)),
                    not_full: Condvar::new(not_full_res(l)),
                    items: VecDeque::new(),
                    closed: false,
                    pushed: 0,
                    last_popped: 0,
                })
                .collect(),
            feeder: if cfg.items > 0 {
                FeederPc::Push { next: 0 }
            } else {
                FeederPc::Close { lane: 0 }
            },
            consumers: vec![ConsumerPc::Pop; cfg.consumers],
            violation: None,
            cfg,
        }
    }

    fn consumer_lane(&self, c: usize) -> usize {
        c % self.cfg.lanes
    }

    /// The feeder's critical section for pushing `item`, shared by the
    /// first attempt and the post-wakeup retry. `recheck` is false only
    /// in the [`QueueMutant::IfWait`] retry.
    fn push_body(
        &mut self,
        item: usize,
        recheck: bool,
        accesses: &mut Vec<Access>,
    ) -> (FeederPc, String) {
        let lane_idx = item % self.cfg.lanes;
        let cap = self.cfg.capacity;
        let lane = &mut self.lanes[lane_idx];
        if recheck && lane.items.len() >= cap {
            accesses.push(lane.not_full.wait_begin(0));
            return (
                FeederPc::BlockedFull { item },
                format!("push({item}) blocks: lane {lane_idx} full"),
            );
        }
        // When `recheck` is false (the IfWait retry) a full lane falls
        // through to the push below; the occupancy check catches it.
        lane.pushed += 1;
        let stamp = lane.pushed;
        lane.items.push_back(stamp);
        accesses.push(lane.not_empty.notify_one());
        let next = FeederPc::Push { next: item + 1 };
        (
            next,
            format!("push({item}) -> lane {lane_idx} stamp {stamp}"),
        )
    }

    /// A consumer's critical section, shared by the first attempt and
    /// the post-wakeup retry.
    fn pop_body(
        &mut self,
        c: usize,
        recheck: bool,
        accesses: &mut Vec<Access>,
    ) -> (ConsumerPc, String) {
        let tid = c + 1;
        let lane_idx = self.consumer_lane(c);
        let lane = &mut self.lanes[lane_idx];
        if let Some(stamp) = lane.items.pop_front() {
            if stamp != lane.last_popped + 1 {
                self.violation = Some(format!(
                    "FIFO violated on lane {lane_idx}: popped stamp {stamp} after {}",
                    lane.last_popped
                ));
            }
            lane.last_popped = stamp;
            if self.cfg.mutant != QueueMutant::MissingNotify {
                accesses.push(lane.not_full.notify_one());
            }
            return (
                ConsumerPc::Pop,
                format!("pop -> lane {lane_idx} stamp {stamp}"),
            );
        }
        if !recheck {
            // IfWait retry on an empty lane: the real bug class this
            // mutant seeds — the item it was woken for is already gone.
            self.violation = Some(format!(
                "pop from empty lane {lane_idx}: wait condition not re-checked"
            ));
            return (ConsumerPc::Pop, format!("pop -> lane {lane_idx} EMPTY"));
        }
        if lane.closed {
            return (ConsumerPc::Done, format!("pop -> lane {lane_idx} closed"));
        }
        accesses.push(lane.not_empty.wait_begin(tid));
        (
            ConsumerPc::Blocked,
            format!("pop blocks: lane {lane_idx} empty"),
        )
    }
}

impl Model for QueueModel {
    fn thread_count(&self) -> usize {
        1 + self.cfg.consumers
    }

    fn thread_name(&self, tid: usize) -> String {
        if tid == 0 {
            "feeder".to_string()
        } else {
            format!("consumer{}/lane{}", tid - 1, self.consumer_lane(tid - 1))
        }
    }

    fn done(&self, tid: usize) -> bool {
        if tid == 0 {
            self.feeder == FeederPc::Done
        } else {
            self.consumers[tid - 1] == ConsumerPc::Done
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        if tid == 0 {
            match &self.feeder {
                FeederPc::Push { next } => self.lanes[next % self.cfg.lanes].mutex.free(),
                FeederPc::BlockedFull { item } => {
                    let lane = &self.lanes[item % self.cfg.lanes];
                    lane.not_full.woken(0) && lane.mutex.free()
                }
                FeederPc::Close { lane } => self.lanes[*lane].mutex.free(),
                FeederPc::Done => false,
            }
        } else {
            let lane = &self.lanes[self.consumer_lane(tid - 1)];
            match &self.consumers[tid - 1] {
                ConsumerPc::Pop => lane.mutex.free(),
                ConsumerPc::Blocked => lane.not_empty.woken(tid) && lane.mutex.free(),
                ConsumerPc::Done => false,
            }
        }
    }

    fn step(&mut self, tid: usize) -> Step {
        let mut accesses = Vec::new();
        let label;
        if tid == 0 {
            match self.feeder.clone() {
                FeederPc::Push { next } => {
                    let lane_idx = next % self.cfg.lanes;
                    accesses.push(self.lanes[lane_idx].mutex.acquire(0));
                    let (pc, l) = self.push_body(next, true, &mut accesses);
                    let pc = if matches!(pc, FeederPc::Push { next } if next >= self.cfg.items) {
                        FeederPc::Close { lane: 0 }
                    } else {
                        pc
                    };
                    accesses.push(self.lanes[lane_idx].mutex.release(0));
                    self.feeder = pc;
                    label = l;
                }
                FeederPc::BlockedFull { item } => {
                    let lane_idx = item % self.cfg.lanes;
                    accesses.push(self.lanes[lane_idx].not_full.resume(0));
                    accesses.push(self.lanes[lane_idx].mutex.acquire(0));
                    let recheck = self.cfg.mutant != QueueMutant::IfWait;
                    let (pc, l) = self.push_body(item, recheck, &mut accesses);
                    let pc = if matches!(pc, FeederPc::Push { next } if next >= self.cfg.items) {
                        FeederPc::Close { lane: 0 }
                    } else {
                        pc
                    };
                    accesses.push(self.lanes[lane_idx].mutex.release(0));
                    self.feeder = pc;
                    label = l;
                }
                FeederPc::Close { lane } => {
                    accesses.push(self.lanes[lane].mutex.acquire(0));
                    self.lanes[lane].closed = true;
                    accesses.push(self.lanes[lane].not_empty.notify_all());
                    accesses.push(self.lanes[lane].not_full.notify_all());
                    accesses.push(self.lanes[lane].mutex.release(0));
                    self.feeder = if lane + 1 < self.cfg.lanes {
                        FeederPc::Close { lane: lane + 1 }
                    } else {
                        FeederPc::Done
                    };
                    label = format!("close lane {lane}");
                }
                FeederPc::Done => unreachable!("stepping a done feeder"),
            }
        } else {
            let c = tid - 1;
            let lane_idx = self.consumer_lane(c);
            match self.consumers[c].clone() {
                ConsumerPc::Pop => {
                    accesses.push(self.lanes[lane_idx].mutex.acquire(tid));
                    let (pc, l) = self.pop_body(c, true, &mut accesses);
                    accesses.push(self.lanes[lane_idx].mutex.release(tid));
                    self.consumers[c] = pc;
                    label = l;
                }
                ConsumerPc::Blocked => {
                    accesses.push(self.lanes[lane_idx].not_empty.resume(tid));
                    accesses.push(self.lanes[lane_idx].mutex.acquire(tid));
                    let recheck = self.cfg.mutant != QueueMutant::IfWait;
                    let (pc, l) = self.pop_body(c, recheck, &mut accesses);
                    accesses.push(self.lanes[lane_idx].mutex.release(tid));
                    self.consumers[c] = pc;
                    label = l;
                }
                ConsumerPc::Done => unreachable!("stepping a done consumer"),
            }
        }
        Step { label, accesses }
    }

    fn check(&self) -> Result<(), String> {
        if let Some(v) = &self.violation {
            return Err(v.clone());
        }
        for (l, lane) in self.lanes.iter().enumerate() {
            if lane.items.len() > self.cfg.capacity {
                return Err(format!(
                    "lane {l} holds {} items, capacity {}",
                    lane.items.len(),
                    self.cfg.capacity
                ));
            }
        }
        Ok(())
    }

    fn check_final(&self) -> Result<(), String> {
        let pushed: u64 = self.lanes.iter().map(|l| l.pushed).sum();
        if pushed != self.cfg.items as u64 {
            return Err(format!(
                "feeder pushed {pushed} of {} items",
                self.cfg.items
            ));
        }
        for (l, lane) in self.lanes.iter().enumerate() {
            if !lane.items.is_empty() {
                return Err(format!(
                    "lane {l} still holds {} items after close",
                    lane.items.len()
                ));
            }
            if lane.last_popped != lane.pushed {
                return Err(format!(
                    "lane {l}: pushed {} items but consumers saw {}",
                    lane.pushed, lane.last_popped
                ));
            }
        }
        Ok(())
    }

    fn snapshot(&self, out: &mut Vec<u64>) {
        for lane in &self.lanes {
            lane.mutex.snapshot(out);
            lane.not_empty.snapshot(out);
            lane.not_full.snapshot(out);
            out.push(lane.items.len() as u64);
            out.extend(lane.items.iter().copied());
            out.push(u64::from(lane.closed));
            out.push(lane.pushed);
            out.push(lane.last_popped);
        }
        out.push(match &self.feeder {
            FeederPc::Push { next } => 1 + *next as u64 * 4,
            FeederPc::BlockedFull { item } => 2 + *item as u64 * 4,
            FeederPc::Close { lane } => 3 + *lane as u64 * 4,
            FeederPc::Done => 0,
        });
        for c in &self.consumers {
            out.push(match c {
                ConsumerPc::Pop => 1,
                ConsumerPc::Blocked => 2,
                ConsumerPc::Done => 0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};

    #[test]
    fn faithful_protocol_passes_exhaustively() {
        let m = QueueModel::new(QueueConfig::default_property());
        let r = explore(&m, &ExploreConfig::default());
        assert!(r.passed(), "{}", r.failure.unwrap().render());
        assert!(r.stats.complete_runs > 0);
    }

    #[test]
    fn if_wait_mutant_pops_an_empty_lane() {
        let m = QueueModel::new(QueueConfig {
            mutant: QueueMutant::IfWait,
            ..QueueConfig::default_property()
        });
        let r = explore(&m, &ExploreConfig::default());
        let f = r.failure.expect("if-wait must fail under some schedule");
        assert!(
            f.reason.contains("not re-checked") || f.reason.contains("capacity"),
            "{}",
            f.reason
        );
    }

    #[test]
    fn missing_notify_mutant_deadlocks() {
        let m = QueueModel::new(QueueConfig {
            mutant: QueueMutant::MissingNotify,
            ..QueueConfig::default_property()
        });
        let r = explore(&m, &ExploreConfig::default());
        let f = r.failure.expect("a lost wakeup must deadlock");
        assert!(f.reason.contains("deadlock"), "{}", f.reason);
    }
}
