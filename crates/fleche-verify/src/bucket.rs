//! Model of the admission token bucket's refill/consume protocol.
//!
//! The real bucket (PR 9, `fleche_model::admission::TokenBucket`) is
//! owned by the admission loop, so every `refill` and `try_consume` is
//! one atomic read-modify-write on the credit counter. The model checks
//! the conservation law that ownership buys: at every state, `tokens ==
//! initial + refilled - consumed` and `tokens <= cap` — credit is
//! neither minted nor destroyed by any interleaving of a refiller and a
//! consumer.
//!
//! The seeded mutant breaks exactly the ownership assumption: the
//! refiller's read-modify-write splits into an unlocked read followed by
//! a later write of `local + amount`. A consume that lands in the window
//! is overwritten and the conservation check reports the lost-refill
//! race with the interleaving that produced it.

use crate::explore::{Access, Model, Step};

/// Model configuration.
#[derive(Clone, Debug)]
pub struct BucketConfig {
    /// Credit ceiling.
    pub cap: u64,
    /// Credit at the start (≤ `cap`).
    pub initial: u64,
    /// Refill operations the refiller performs.
    pub refills: usize,
    /// Credit each refill adds (before clamping at `cap`).
    pub refill_amount: u64,
    /// Consume probes the consumer performs (each takes one token when
    /// one is available, else passes).
    pub consumes: usize,
    /// Build in the split read/write refill bug.
    pub mutant_lost_refill: bool,
}

impl BucketConfig {
    /// The shipped property configuration: a three-token cap with enough
    /// refills and consumes that every interleaving of the two threads
    /// crosses the clamp and the empty bucket at least once.
    pub fn default_property() -> BucketConfig {
        BucketConfig {
            cap: 3,
            initial: 2,
            refills: 2,
            refill_amount: 1,
            consumes: 3,
            mutant_lost_refill: false,
        }
    }
}

/// Resource id of the credit counter.
const TOKENS: u64 = 80;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RefillPc {
    /// About to perform refill `i` (atomic in the faithful model; the
    /// unlocked read in the mutant).
    Start {
        i: usize,
    },
    /// Mutant only: holding `local`, about to write it back plus the
    /// refill amount.
    Write {
        i: usize,
        local: u64,
    },
    Done,
}

/// The bucket model. Thread 0 is the consumer, thread 1 the refiller.
#[derive(Clone, Debug)]
pub struct BucketModel {
    cfg: BucketConfig,
    tokens: u64,
    /// Credit actually added (clamp losses excluded).
    refilled: u64,
    consumed: u64,
    probes: usize,
    refiller: RefillPc,
    violation: Option<String>,
}

impl BucketModel {
    /// Builds the model.
    pub fn new(cfg: BucketConfig) -> BucketModel {
        assert!(cfg.cap > 0 && cfg.initial <= cfg.cap);
        assert!(cfg.refills > 0 && cfg.consumes > 0 && cfg.refill_amount > 0);
        BucketModel {
            tokens: cfg.initial,
            refilled: 0,
            consumed: 0,
            probes: 0,
            refiller: RefillPc::Start { i: 0 },
            violation: None,
            cfg,
        }
    }

    fn conserve(&mut self, at: &str) {
        if self.violation.is_some() {
            return;
        }
        // Checked: once credit is already corrupted, `consumed` can
        // exceed what was ever minted.
        let expected = (self.cfg.initial + self.refilled).checked_sub(self.consumed);
        if expected != Some(self.tokens) {
            self.violation = Some(format!(
                "lost refill race at {at}: {} tokens, but initial {} + refilled {} - consumed {} = {}",
                self.tokens,
                self.cfg.initial,
                self.refilled,
                self.consumed,
                expected.map_or("underflow".to_string(), |e| e.to_string())
            ));
        } else if self.tokens > self.cfg.cap {
            self.violation = Some(format!(
                "credit over the cap at {at}: {} tokens > cap {}",
                self.tokens, self.cfg.cap
            ));
        }
    }
}

impl Model for BucketModel {
    fn thread_count(&self) -> usize {
        2
    }

    fn thread_name(&self, tid: usize) -> String {
        if tid == 0 { "consumer" } else { "refiller" }.to_string()
    }

    fn done(&self, tid: usize) -> bool {
        if tid == 0 {
            self.probes >= self.cfg.consumes
        } else {
            self.refiller == RefillPc::Done
        }
    }

    fn enabled(&self, tid: usize) -> bool {
        !self.done(tid)
    }

    fn step(&mut self, tid: usize) -> Step {
        let mut accesses = Vec::new();
        let label;
        if tid == 0 {
            // One atomic probe: take a token when one is there.
            accesses.push(Access::read(TOKENS));
            if self.tokens >= 1 {
                accesses.push(Access::write(TOKENS));
                self.tokens -= 1;
                self.consumed += 1;
                label = format!("consume: {} tokens left", self.tokens);
            } else {
                label = "consume probe: empty bucket".to_string();
            }
            self.probes += 1;
            self.conserve("consume");
        } else {
            match self.refiller {
                RefillPc::Start { i } => {
                    accesses.push(Access::read(TOKENS));
                    if self.cfg.mutant_lost_refill {
                        // The bug: read now, write later, unlocked.
                        self.refiller = RefillPc::Write {
                            i,
                            local: self.tokens,
                        };
                        label = format!("refill {i}: unlocked read of {} tokens", self.tokens);
                    } else {
                        accesses.push(Access::write(TOKENS));
                        let added = self.cfg.refill_amount.min(self.cfg.cap - self.tokens);
                        self.tokens += added;
                        self.refilled += added;
                        self.refiller = if i + 1 < self.cfg.refills {
                            RefillPc::Start { i: i + 1 }
                        } else {
                            RefillPc::Done
                        };
                        label = format!("refill {i}: +{added} -> {} tokens", self.tokens);
                        self.conserve("refill");
                    }
                }
                RefillPc::Write { i, local } => {
                    accesses.push(Access::write(TOKENS));
                    let added = self.cfg.refill_amount.min(self.cfg.cap - local);
                    self.tokens = local + added;
                    self.refilled += added;
                    self.refiller = if i + 1 < self.cfg.refills {
                        RefillPc::Start { i: i + 1 }
                    } else {
                        RefillPc::Done
                    };
                    label = format!("refill {i}: write back {local}+{added} tokens");
                    self.conserve("refill write-back");
                }
                RefillPc::Done => unreachable!("stepping a done refiller"),
            }
        }
        Step { label, accesses }
    }

    fn check(&self) -> Result<(), String> {
        self.violation.clone().map_or(Ok(()), Err)
    }

    fn check_final(&self) -> Result<(), String> {
        let expected = (self.cfg.initial + self.refilled).checked_sub(self.consumed);
        if expected != Some(self.tokens) {
            return Err(format!(
                "quiesced with {} tokens, expected initial {} + refilled {} - consumed {}",
                self.tokens, self.cfg.initial, self.refilled, self.consumed
            ));
        }
        if self.tokens > self.cfg.cap {
            return Err(format!(
                "quiesced over the cap: {} > {}",
                self.tokens, self.cfg.cap
            ));
        }
        Ok(())
    }

    fn snapshot(&self, out: &mut Vec<u64>) {
        out.push(self.tokens);
        out.push(self.refilled);
        out.push(self.consumed);
        out.push(self.probes as u64);
        let (tag, i, local) = match self.refiller {
            RefillPc::Start { i } => (1, i as u64, 0),
            RefillPc::Write { i, local } => (2, i as u64, local),
            RefillPc::Done => (0, 0, 0),
        };
        out.push(tag);
        out.push(i);
        out.push(local);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, ExploreConfig};

    #[test]
    fn owned_bucket_conserves_credit_exhaustively() {
        let r = explore(
            &BucketModel::new(BucketConfig::default_property()),
            &ExploreConfig::default(),
        );
        assert!(r.passed(), "{}", r.failure.unwrap().render());
    }

    #[test]
    fn split_refill_loses_an_interleaved_consume() {
        let r = explore(
            &BucketModel::new(BucketConfig {
                mutant_lost_refill: true,
                ..BucketConfig::default_property()
            }),
            &ExploreConfig::default(),
        );
        let f = r.failure.expect("unlocked refill must lose a consume");
        assert!(f.reason.contains("lost refill"), "{}", f.reason);
    }
}
