//! `fleche-verify`: exhaustive schedule-space checking for the serving
//! protocols.
//!
//! The crate is a small loom-style model checker (no dependencies
//! beyond `fleche-model`, which supplies the shared protocol
//! constants). [`explore`](explore::explore) walks *every* thread
//! interleaving of a modeled protocol — bounded-preemption DFS with a
//! sleep-set partial-order reduction and state-hash memoization — and
//! reports the first invariant violation with the full schedule that
//! produced it.
//!
//! Five protocols are modeled, one per module:
//!
//! * [`queue`] — the per-shard bounded queue behind
//!   `fleche_model::concurrent::ShardedQueue` (mutex + two condvars).
//! * [`ring`] — the prep→execute pipeline ring (publish + credit
//!   edges of the `sync_channel(depth)` hand-off).
//! * [`batcher`] — the micro-batcher's seal-on-full / linger-timer
//!   discipline.
//! * [`version`] — the batch-boundary update-visibility rule.
//! * [`bucket`] — the admission token bucket's refill/consume
//!   credit-conservation law.
//!
//! Every property ships with at least one deliberately broken *mutant*
//! — the same model with a seeded protocol bug — and the checker must
//! produce a counterexample trace for each. A verifier that cannot fail
//! proves nothing; the mutants are its self-test.

pub mod batcher;
pub mod bucket;
pub mod explore;
pub mod queue;
pub mod ring;
pub mod sync;
pub mod version;
pub mod wall;

use explore::{explore, ExploreConfig, ExploreResult};

/// A checked protocol property: a faithful model the explorer must pass
/// exhaustively.
pub struct Property {
    /// Stable name, `protocol/invariant`.
    pub name: &'static str,
    /// One-line statement of the invariant.
    pub describes: &'static str,
    run: fn(&ExploreConfig) -> ExploreResult,
}

/// A seeded protocol bug: the same model as its property, broken, which
/// the explorer must fail with a counterexample.
pub struct Mutant {
    /// Stable name, `protocol/bug`.
    pub name: &'static str,
    /// The property whose model this mutates.
    pub property: &'static str,
    /// Substring the counterexample's reason must contain.
    pub expect: &'static str,
    run: fn(&ExploreConfig) -> ExploreResult,
}

impl Property {
    /// Explores the property's model under `config`.
    pub fn run(&self, config: &ExploreConfig) -> ExploreResult {
        (self.run)(config)
    }
}

impl Mutant {
    /// Explores the mutant's model under `config`.
    pub fn run(&self, config: &ExploreConfig) -> ExploreResult {
        (self.run)(config)
    }
}

/// The shipped properties, in report order.
pub fn properties() -> Vec<Property> {
    vec![
        Property {
            name: "queue/bounded-fifo-no-lost-wakeup",
            describes: "shard queue: capacity respected, per-lane FIFO, every wakeup race drained",
            run: |c| {
                explore(
                    &queue::QueueModel::new(queue::QueueConfig::default_property()),
                    c,
                )
            },
        },
        Property {
            name: "ring/publish-credit-in-order",
            describes: "pipeline ring: executor sees every batch in order, producer never laps",
            run: |c| {
                explore(
                    &ring::RingModel::new(ring::RingConfig::default_property()),
                    c,
                )
            },
        },
        Property {
            name: "batcher/seal-linger-exactly-once",
            describes: "micro-batcher: sealed batches partition arrivals, non-empty, in order",
            run: |c| {
                explore(
                    &batcher::BatcherModel::new(batcher::BatcherConfig::default_property()),
                    c,
                )
            },
        },
        Property {
            name: "version/batch-boundary-visibility",
            describes: "updates invisible mid-batch, applied max-wins at the boundary",
            run: |c| {
                explore(
                    &version::VersionModel::new(version::VersionConfig::default_property()),
                    c,
                )
            },
        },
        Property {
            name: "bucket/refill-consume-conservation",
            describes:
                "admission token bucket: credit conserved under the cap in every interleaving",
            run: |c| {
                explore(
                    &bucket::BucketModel::new(bucket::BucketConfig::default_property()),
                    c,
                )
            },
        },
    ]
}

/// The shipped mutants, in report order.
pub fn mutants() -> Vec<Mutant> {
    vec![
        Mutant {
            name: "queue/if-wait",
            property: "queue/bounded-fifo-no-lost-wakeup",
            expect: "not re-checked",
            run: |c| {
                explore(
                    &queue::QueueModel::new(queue::QueueConfig {
                        mutant: queue::QueueMutant::IfWait,
                        ..queue::QueueConfig::default_property()
                    }),
                    c,
                )
            },
        },
        Mutant {
            name: "queue/missing-notify",
            property: "queue/bounded-fifo-no-lost-wakeup",
            expect: "deadlock",
            run: |c| {
                explore(
                    &queue::QueueModel::new(queue::QueueConfig {
                        mutant: queue::QueueMutant::MissingNotify,
                        ..queue::QueueConfig::default_property()
                    }),
                    c,
                )
            },
        },
        Mutant {
            name: "ring/no-credit",
            property: "ring/publish-credit-in-order",
            expect: "ring overrun",
            run: |c| {
                explore(
                    &ring::RingModel::new(ring::RingConfig {
                        mutant_no_credit: true,
                        ..ring::RingConfig::default_property()
                    }),
                    c,
                )
            },
        },
        Mutant {
            name: "batcher/stale-seal",
            property: "batcher/seal-linger-exactly-once",
            expect: "empty",
            run: |c| {
                explore(
                    &batcher::BatcherModel::new(batcher::BatcherConfig {
                        mutant_stale_seal: true,
                        ..batcher::BatcherConfig::default_property()
                    }),
                    c,
                )
            },
        },
        Mutant {
            name: "version/mid-batch-apply",
            property: "version/batch-boundary-visibility",
            expect: "torn batch",
            run: |c| {
                explore(
                    &version::VersionModel::new(version::VersionConfig {
                        mutant: version::VersionMutant::MidBatchApply,
                        ..version::VersionConfig::default_property()
                    }),
                    c,
                )
            },
        },
        Mutant {
            name: "version/blind-write",
            property: "version/batch-boundary-visibility",
            expect: "regressed",
            run: |c| {
                explore(
                    &version::VersionModel::new(version::VersionConfig {
                        mutant: version::VersionMutant::BlindWrite,
                        ..version::VersionConfig::default_property()
                    }),
                    c,
                )
            },
        },
        Mutant {
            name: "bucket/lost-refill",
            property: "bucket/refill-consume-conservation",
            expect: "lost refill",
            run: |c| {
                explore(
                    &bucket::BucketModel::new(bucket::BucketConfig {
                        mutant_lost_refill: true,
                        ..bucket::BucketConfig::default_property()
                    }),
                    c,
                )
            },
        },
    ]
}

/// Outcome of one property run.
pub struct PropertyOutcome {
    /// The property.
    pub name: &'static str,
    /// One-line invariant statement.
    pub describes: &'static str,
    /// Explorer counters.
    pub stats: explore::ExploreStats,
    /// A counterexample, if the property (unexpectedly) failed.
    pub failure: Option<explore::Failure>,
    /// Wall time, milliseconds (stderr/JSON only — not deterministic).
    pub wall_ms: f64,
}

/// Outcome of one mutant run.
pub struct MutantOutcome {
    /// The mutant.
    pub name: &'static str,
    /// The property it mutates.
    pub property: &'static str,
    /// Substring the counterexample must contain.
    pub expect: &'static str,
    /// Explorer counters.
    pub stats: explore::ExploreStats,
    /// The counterexample (absence means the mutant survived — a
    /// checker bug).
    pub failure: Option<explore::Failure>,
    /// Wall time, milliseconds.
    pub wall_ms: f64,
}

impl MutantOutcome {
    /// True when the checker caught the seeded bug with the expected
    /// counterexample.
    pub fn caught(&self) -> bool {
        self.failure
            .as_ref()
            .is_some_and(|f| f.reason.contains(self.expect))
    }
}

/// Every property and mutant, run to completion.
pub struct Report {
    /// Property outcomes, in registry order.
    pub properties: Vec<PropertyOutcome>,
    /// Mutant outcomes, in registry order.
    pub mutants: Vec<MutantOutcome>,
}

impl Report {
    /// True when every property passed and every mutant was caught.
    pub fn ok(&self) -> bool {
        self.properties.iter().all(|p| p.failure.is_none())
            && self.mutants.iter().all(MutantOutcome::caught)
    }
}

/// Runs the full registry under `config`.
pub fn run_all(config: &ExploreConfig) -> Report {
    let properties = properties()
        .into_iter()
        .map(|p| {
            let timer = wall::WallTimer::new();
            let r = p.run(config);
            PropertyOutcome {
                name: p.name,
                describes: p.describes,
                stats: r.stats,
                failure: r.failure,
                wall_ms: timer.elapsed_ms(),
            }
        })
        .collect();
    let mutants = mutants()
        .into_iter()
        .map(|m| {
            let timer = wall::WallTimer::new();
            let r = m.run(config);
            MutantOutcome {
                name: m.name,
                property: m.property,
                expect: m.expect,
                stats: r.stats,
                failure: r.failure,
                wall_ms: timer.elapsed_ms(),
            }
        })
        .collect();
    Report {
        properties,
        mutants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_registry_is_green() {
        let report = run_all(&ExploreConfig::default());
        for p in &report.properties {
            assert!(
                p.failure.is_none(),
                "{} failed:\n{}",
                p.name,
                p.failure.as_ref().unwrap().render()
            );
        }
        for m in &report.mutants {
            assert!(m.caught(), "mutant {} survived exploration", m.name);
        }
        assert!(report.ok());
    }

    #[test]
    fn every_mutant_names_a_registered_property() {
        let names: Vec<&str> = properties().iter().map(|p| p.name).collect();
        for m in mutants() {
            assert!(names.contains(&m.property), "{} orphaned", m.name);
        }
    }
}
