//! Seeded hash-iteration violations: one import, one use site.
use std::collections::HashMap;

pub fn histogram(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = Default::default();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    // The bug this lint exists for: iteration order is random per process.
    counts.into_iter().collect()
}
