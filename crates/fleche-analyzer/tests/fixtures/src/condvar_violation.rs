//! Seeded condvar-wait-loop violation: an `if`-gated wait (line flagged)
//! next to the correct `while` form and the exempt shapes.

pub fn bad_wait(cv: &Cv, mut guard: Guard) {
    if guard.full {
        guard = cv.wait(guard); // VIOLATION: no re-check after wakeup
    }
    consume(guard);
}

pub fn good_wait(cv: &Cv, mut guard: Guard) {
    while guard.full {
        guard = cv.wait(guard);
    }
    consume(guard);
}

pub fn exempt_shapes(cv: &Cv, barrier: &Barrier, guard: Guard) {
    barrier.wait();
    let _g = cv.wait_while(guard, |s| s.full);
}
