//! Seeded stale-allow violation: the marker below excuses a violation
//! that no longer exists, so the audit must flag the marker itself.

// analyzer: allow(hash-iteration)
pub fn clean() -> Vec<u32> {
    Vec::new()
}
