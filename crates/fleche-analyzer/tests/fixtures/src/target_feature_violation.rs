//! Seeded `target-feature-guard` violations: one exported specialization
//! and one unguarded call, plus the three shapes that must stay clean
//! (guarded dispatch, tf-to-tf call, restricted visibility).

#[target_feature(enable = "avx2")]
pub fn exported_specialization(a: &[f32]) -> f32 {
    // VIOLATION: bare `pub` exports the specialization past this file.
    a[0]
}

#[target_feature(enable = "avx2")]
pub(crate) fn dot_avx2(a: &[f32]) -> f32 {
    a.iter().sum()
}

#[target_feature(enable = "avx2")]
pub(crate) fn sum_avx2(a: &[f32]) -> f32 {
    // Clean: a target-feature fn calling a sibling needs no re-check.
    dot_avx2(a)
}

pub fn unguarded(a: &[f32]) -> f32 {
    // VIOLATION: no runtime feature check dominates this call.
    dot_avx2(a)
}

pub fn dispatched(a: &[f32]) -> f32 {
    // Clean: the call only runs once the feature is proven present.
    if std::arch::is_x86_feature_detected!("avx2") {
        return sum_avx2(a);
    }
    a.iter().sum()
}
