//! Target of a stale config allow entry: this file is allow-listed for
//! hash-iteration in analyzer.toml but contains no hash container, so
//! the entry suppresses nothing and the audit flags the config line.

use std::collections::BTreeMap;

pub fn ordered() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}
