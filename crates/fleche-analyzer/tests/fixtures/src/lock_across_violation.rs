//! Seeded lock-across-await-free-hot-path violation: a guard held across
//! `run_batch` (flagged), next to the drop-first and scoped-out forms.

pub fn bad(engine: &mut Engine, queue_mutex: &M, batch: &B) {
    let guard = queue_mutex.lock();
    engine.run_batch(batch); // VIOLATION: `guard` still live
    drop(guard);
}

pub fn good_drop_first(engine: &mut Engine, queue_mutex: &M, batch: &B) {
    let guard = queue_mutex.lock();
    drop(guard);
    engine.run_batch(batch);
}

pub fn good_scoped(engine: &mut Engine, queue_mutex: &M, batch: &B) {
    {
        let _guard = queue_mutex.lock();
    }
    engine.run_batch(batch);
}
