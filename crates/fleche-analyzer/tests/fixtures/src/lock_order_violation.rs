//! Seeded lock-order violation: two functions acquire the same pair of
//! locks in opposite orders (the classic deadlock shape).

use std::sync::Mutex;

pub struct Pair {
    pub index_mutex: Mutex<u32>,
    pub pool_mutex: Mutex<u32>,
}

pub fn forward(p: &Pair) -> u32 {
    let a = p.index_mutex.lock();
    let b = p.pool_mutex.lock();
    *a.unwrap_or_else(|e| e.into_inner()) + *b.unwrap_or_else(|e| e.into_inner())
}

pub fn backward(p: &Pair) -> u32 {
    let b = p.pool_mutex.lock();
    let a = p.index_mutex.lock();
    *a.unwrap_or_else(|e| e.into_inner()) - *b.unwrap_or_else(|e| e.into_inner())
}
