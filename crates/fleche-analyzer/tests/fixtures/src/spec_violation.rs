//! Seeded cost-constants violation: `mystery_knob` is absent from doc.md
//! while `hbm_bandwidth` is documented; `NotChecked` is not configured.

pub struct Ns(pub f64);

pub struct DeviceSpec {
    pub hbm_bandwidth: f64,
    pub mystery_knob: Ns,
}

pub struct NotChecked {
    pub also_undocumented: u8,
}
