//! Seeded no-panic-hot-path violations: one `.unwrap()`, one `panic!`.
//! The `.expect()` carries an inline allow marker and must not count.
//! The test module at the bottom may panic freely.

pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn must_be_even(x: u32) -> u32 {
    if x % 2 != 0 {
        panic!("odd input");
    }
    x / 2
}

pub fn documented(xs: &[u32]) -> u32 {
    // analyzer: allow(no-panic-hot-path)
    *xs.last().expect("reviewed: caller guarantees non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Option<u8> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
