//! Seeded slot-resource-coverage violation: a cache mutation with no
//! race-checker declaration (flagged), next to a covered sibling.

pub fn bad_teardown(sys: &mut Sys) {
    sys.cache.wipe(); // VIOLATION: no slot_resource in this fn
}

pub fn good_teardown(sys: &mut Sys, rc: &mut Rc) {
    sys.cache.end_batch_with(|class, slot| {
        rc.host_write("reclaim", slot_resource(class, slot));
    });
}

pub fn other_receiver(sys: &mut Sys) {
    sys.journal.wipe();
}
