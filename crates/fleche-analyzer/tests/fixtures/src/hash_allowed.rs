//! Same construct as hash_violation.rs, but this path is on the config
//! allow-list (it sorts before iterating), so the rule must stay silent.
use std::collections::HashMap;

pub fn histogram(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = Default::default();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    let mut out: Vec<(u32, u32)> = counts.into_iter().collect();
    out.sort_unstable();
    out
}
