//! Seeded no-wall-clock violation: one `Instant` read. The string and
//! comment mentions of Instant below must not count.

pub fn stamp() -> std::time::Instant {
    // A comment saying Instant is fine.
    let _label = "Instant in a string is fine too";
    std::time::Instant::now()
}
