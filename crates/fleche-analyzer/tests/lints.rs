//! End-to-end lint tests over the seeded-violation fixture workspace in
//! `tests/fixtures/`: one fixture file per rule, plus a config-allow-list
//! case and an inline-allow case, plus the CLI's exit-code contract.

use fleche_analyzer::{config, rules, run};
use std::path::Path;
use std::process::Command;

fn fixture_root() -> &'static Path {
    // Integration tests run with the crate directory as cwd.
    Path::new("tests/fixtures")
}

fn fixture_diagnostics() -> Vec<fleche_analyzer::Diagnostic> {
    let cfg_src = std::fs::read_to_string(fixture_root().join("analyzer.toml"))
        .expect("fixture config readable");
    let mut cfg = config::parse(&cfg_src).expect("fixture config parses");
    cfg.source = "analyzer.toml".to_string();
    run(fixture_root(), &cfg).expect("fixture workspace scans")
}

fn count(diags: &[fleche_analyzer::Diagnostic], rule: &str, file: &str) -> usize {
    diags
        .iter()
        .filter(|d| d.rule == rule && d.file == file)
        .count()
}

#[test]
fn every_rule_flags_its_seeded_fixture() {
    let diags = fixture_diagnostics();
    assert_eq!(
        count(&diags, rules::ids::HASH_ITERATION, "src/hash_violation.rs"),
        2,
        "import + use site"
    );
    assert_eq!(
        count(
            &diags,
            rules::ids::NO_PANIC_HOT_PATH,
            "src/panic_violation.rs"
        ),
        2,
        "unwrap + panic!; inline-allowed expect and test-mod unwrap excluded"
    );
    assert_eq!(
        count(
            &diags,
            rules::ids::NO_WALL_CLOCK,
            "src/wall_clock_violation.rs"
        ),
        2,
        "return type + now() call; string/comment mentions excluded"
    );
    assert_eq!(
        count(
            &diags,
            rules::ids::LOCK_ORDER,
            "src/lock_order_violation.rs"
        ),
        1,
        "one opposite-order pair"
    );
    assert_eq!(
        count(&diags, rules::ids::COST_CONSTANTS, "src/spec_violation.rs"),
        1,
        "mystery_knob only; documented + unconfigured-struct fields excluded"
    );
    assert_eq!(
        count(
            &diags,
            rules::ids::CONDVAR_WAIT_LOOP,
            "src/condvar_violation.rs"
        ),
        1,
        "if-gated wait only; while/loop, Barrier::wait, wait_while excluded"
    );
    assert_eq!(
        count(
            &diags,
            rules::ids::LOCK_ACROSS_HOT_PATH,
            "src/lock_across_violation.rs"
        ),
        1,
        "guard across run_batch only; drop-first and scoped-out excluded"
    );
    assert_eq!(
        count(
            &diags,
            rules::ids::SLOT_RESOURCE_COVERAGE,
            "src/slot_coverage_violation.rs"
        ),
        1,
        "undeclared cache.wipe only; declared fn and other receiver excluded"
    );
    assert_eq!(
        count(
            &diags,
            rules::ids::TARGET_FEATURE_GUARD,
            "src/target_feature_violation.rs"
        ),
        2,
        "exported specialization + unguarded call; dispatched, tf-to-tf, \
         and pub(crate) shapes excluded"
    );
    assert_eq!(
        count(
            &diags,
            rules::ids::STALE_ALLOW,
            "src/stale_allow_violation.rs"
        ),
        1,
        "the unused inline marker itself"
    );
    assert_eq!(
        count(&diags, rules::ids::STALE_ALLOW, "analyzer.toml"),
        1,
        "the unused `src/stale_allowed.rs` config allow entry"
    );
    // Nothing beyond the seeded violations.
    assert_eq!(diags.len(), 15, "unexpected extra diagnostics: {diags:?}");
}

#[test]
fn stale_allow_points_at_the_config_line() {
    let diags = fixture_diagnostics();
    let entry = diags
        .iter()
        .find(|d| d.rule == rules::ids::STALE_ALLOW && d.file == "analyzer.toml")
        .expect("config stale-allow diagnostic present");
    // The `src/stale_allowed.rs` entry sits on line 7 of the fixture
    // config; the audit must point at the exact entry to drop.
    assert_eq!(entry.line, 7, "wrong config line: {entry:?}");
    assert!(entry.message.contains("stale_allowed.rs"), "{entry:?}");
}

#[test]
fn used_allows_are_not_flagged() {
    let diags = fixture_diagnostics();
    // The inline allow in panic_violation.rs suppresses a real expect,
    // and the hash_allowed.rs config entry suppresses real hash use —
    // neither may be reported stale.
    assert!(
        !diags.iter().any(|d| d.rule == rules::ids::STALE_ALLOW
            && (d.file == "src/panic_violation.rs" || d.message.contains("hash_allowed.rs"))),
        "{diags:?}"
    );
}

#[test]
fn config_allow_list_silences_a_covered_path() {
    let diags = fixture_diagnostics();
    assert_eq!(
        count(&diags, rules::ids::HASH_ITERATION, "src/hash_allowed.rs"),
        0,
        "allow-listed file must not be flagged"
    );
}

#[test]
fn diagnostics_are_sorted_for_stable_reports() {
    let diags = fixture_diagnostics();
    let keys: Vec<_> = diags
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn cli_exits_nonzero_on_fixture_and_zero_on_clean_workspace() {
    let exe = env!("CARGO_BIN_EXE_fleche-analyzer");
    let dirty = Command::new(exe)
        .args([
            "--root",
            "tests/fixtures",
            "--config",
            "tests/fixtures/analyzer.toml",
        ])
        .output()
        .expect("analyzer runs");
    assert_eq!(dirty.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    assert!(stdout.contains("[hash-iteration]"), "stdout: {stdout}");
    assert!(stdout.contains("[stale-allow]"), "stdout: {stdout}");
    assert!(stdout.contains("15 violation(s)"), "stdout: {stdout}");

    // The real workspace (two directories up) must be clean — this is the
    // committed regression guarantee behind results/analyzer_report.txt.
    let clean = Command::new(exe)
        .args(["--root", "../.."])
        .output()
        .expect("analyzer runs");
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert_eq!(clean.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("workspace clean"));
}
