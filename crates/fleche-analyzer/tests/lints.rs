//! End-to-end lint tests over the seeded-violation fixture workspace in
//! `tests/fixtures/`: one fixture file per rule, plus a config-allow-list
//! case and an inline-allow case, plus the CLI's exit-code contract.

use fleche_analyzer::{config, rules, run};
use std::path::Path;
use std::process::Command;

fn fixture_root() -> &'static Path {
    // Integration tests run with the crate directory as cwd.
    Path::new("tests/fixtures")
}

fn fixture_diagnostics() -> Vec<fleche_analyzer::Diagnostic> {
    let cfg_src = std::fs::read_to_string(fixture_root().join("analyzer.toml"))
        .expect("fixture config readable");
    let cfg = config::parse(&cfg_src).expect("fixture config parses");
    run(fixture_root(), &cfg).expect("fixture workspace scans")
}

fn count(diags: &[fleche_analyzer::Diagnostic], rule: &str, file: &str) -> usize {
    diags
        .iter()
        .filter(|d| d.rule == rule && d.file == file)
        .count()
}

#[test]
fn every_rule_flags_its_seeded_fixture() {
    let diags = fixture_diagnostics();
    assert_eq!(
        count(&diags, rules::ids::HASH_ITERATION, "src/hash_violation.rs"),
        2,
        "import + use site"
    );
    assert_eq!(
        count(
            &diags,
            rules::ids::NO_PANIC_HOT_PATH,
            "src/panic_violation.rs"
        ),
        2,
        "unwrap + panic!; inline-allowed expect and test-mod unwrap excluded"
    );
    assert_eq!(
        count(
            &diags,
            rules::ids::NO_WALL_CLOCK,
            "src/wall_clock_violation.rs"
        ),
        2,
        "return type + now() call; string/comment mentions excluded"
    );
    assert_eq!(
        count(
            &diags,
            rules::ids::LOCK_ORDER,
            "src/lock_order_violation.rs"
        ),
        1,
        "one opposite-order pair"
    );
    assert_eq!(
        count(&diags, rules::ids::COST_CONSTANTS, "src/spec_violation.rs"),
        1,
        "mystery_knob only; documented + unconfigured-struct fields excluded"
    );
    // Nothing beyond the seeded violations.
    assert_eq!(diags.len(), 8, "unexpected extra diagnostics: {diags:?}");
}

#[test]
fn config_allow_list_silences_a_covered_path() {
    let diags = fixture_diagnostics();
    assert_eq!(
        count(&diags, rules::ids::HASH_ITERATION, "src/hash_allowed.rs"),
        0,
        "allow-listed file must not be flagged"
    );
}

#[test]
fn diagnostics_are_sorted_for_stable_reports() {
    let diags = fixture_diagnostics();
    let keys: Vec<_> = diags
        .iter()
        .map(|d| (d.file.clone(), d.line, d.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn cli_exits_nonzero_on_fixture_and_zero_on_clean_workspace() {
    let exe = env!("CARGO_BIN_EXE_fleche-analyzer");
    let dirty = Command::new(exe)
        .args([
            "--root",
            "tests/fixtures",
            "--config",
            "tests/fixtures/analyzer.toml",
        ])
        .output()
        .expect("analyzer runs");
    assert_eq!(dirty.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&dirty.stdout);
    assert!(stdout.contains("[hash-iteration]"), "stdout: {stdout}");
    assert!(stdout.contains("8 violation(s)"), "stdout: {stdout}");

    // The real workspace (two directories up) must be clean — this is the
    // committed regression guarantee behind results/analyzer_report.txt.
    let clean = Command::new(exe)
        .args(["--root", "../.."])
        .output()
        .expect("analyzer runs");
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert_eq!(clean.status.code(), Some(0), "stdout: {stdout}");
    assert!(stdout.contains("workspace clean"));
}
