//! A small token-level Rust lexer.
//!
//! The analyzer runs in an offline build with no registry access, so it
//! cannot depend on `syn`/`proc-macro2` (the same constraint that produced
//! the vendored shims in `vendor/`). The lint rules it feeds only need a
//! faithful *token* view of a source file — identifiers, punctuation, and
//! nesting depth, with strings/comments/lifetimes correctly skipped — not a
//! parse tree. Getting the token view right is the part that breaks naive
//! grep-based linting: `"HashMap"` inside a string, `unwrap` inside a
//! nested block comment, `'a` (a lifetime) versus `'a'` (a char literal),
//! and raw strings like `r#"..."#` all must not produce tokens.
//!
//! The lexer also extracts *suppression markers* from comments: a comment
//! containing `analyzer: allow(rule-id)` suppresses diagnostics of that
//! rule on the comment's line and on the following line, mirroring how
//! `#[allow]` attaches to the next item.

/// One lexed token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text. For literals this is a placeholder, not the
    /// contents — rules must never see string contents as identifiers.
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
    /// Brace-nesting depth at the position of this token (before applying
    /// the token itself when it is a brace).
    pub depth: u32,
}

/// Token categories the rules distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// A lifetime such as `'a` (not a char literal).
    Lifetime,
    /// String, raw-string, byte-string, or char literal (contents hidden).
    Literal,
    /// Numeric literal.
    Number,
    /// Single punctuation character (`.`, `:`, `!`, `(`, `{`, ...).
    Punct,
}

/// A suppression extracted from an `analyzer: allow(rule)` comment.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Suppression {
    /// The rule id being allowed.
    pub rule: String,
    /// Line of the comment. The suppression covers this line and the next.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Token stream in source order.
    pub tokens: Vec<Token>,
    /// Inline `analyzer: allow(...)` markers found in comments.
    pub suppressions: Vec<Suppression>,
}

impl Lexed {
    /// True when `rule` is suppressed at `line` by an inline marker.
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.rule == rule && (s.line == line || s.line + 1 == line))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans a comment body for `analyzer: allow(rule-a, rule-b)` markers.
fn scan_comment(body: &str, line: u32, out: &mut Vec<Suppression>) {
    let mut rest = body;
    while let Some(pos) = rest.find("analyzer:") {
        rest = &rest[pos + "analyzer:".len()..];
        let trimmed = rest.trim_start();
        let Some(args) = trimmed.strip_prefix("allow(") else {
            continue;
        };
        let Some(end) = args.find(')') else { continue };
        for rule in args[..end].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                out.push(Suppression {
                    rule: rule.to_string(),
                    line,
                });
            }
        }
        rest = &args[end..];
    }
}

/// Lexes `src` into tokens and suppression markers.
pub fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut depth = 0u32;
    let mut out = Lexed::default();

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.chars().filter(|&c| c == '\n').count() as u32
        };
    }

    while i < bytes.len() {
        let c = bytes[i];
        // Newlines / whitespace.
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && bytes.get(i + 1) == Some(&'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != '\n' {
                i += 1;
            }
            let body: String = bytes[start..i].iter().collect();
            scan_comment(&body, line, &mut out.suppressions);
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && bytes.get(i + 1) == Some(&'*') {
            let start_line = line;
            let start = i;
            i += 2;
            let mut nest = 1u32;
            while i < bytes.len() && nest > 0 {
                if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                    nest += 1;
                    i += 2;
                } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                    nest -= 1;
                    i += 2;
                } else {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            let body: String = bytes[start..i.min(bytes.len())].iter().collect();
            scan_comment(&body, start_line, &mut out.suppressions);
            continue;
        }
        // Raw strings: r"..." / r#"..."# / br##"..."## etc.
        if (c == 'r' || c == 'b') && raw_string_at(&bytes, i).is_some() {
            let (consumed, text) = raw_string_at(&bytes, i).expect("checked above");
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: String::from("\"raw\""),
                line,
                depth,
            });
            bump_lines!(text);
            i += consumed;
            continue;
        }
        // Plain and byte strings.
        if c == '"' || (c == 'b' && bytes.get(i + 1) == Some(&'"')) {
            if c == 'b' {
                i += 1;
            }
            i += 1; // opening quote
            while i < bytes.len() {
                match bytes[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            out.tokens.push(Token {
                kind: TokenKind::Literal,
                text: String::from("\"str\""),
                line,
                depth,
            });
            continue;
        }
        // Lifetime vs char literal. A `'` followed by ident-start is a
        // lifetime unless the next-next char closes it as a char literal
        // (`'a'`). Escapes (`'\n'`) are always char literals.
        if c == '\'' {
            let next = bytes.get(i + 1).copied();
            let closes = bytes.get(i + 2) == Some(&'\'');
            match next {
                Some(n) if is_ident_start(n) && !closes => {
                    // Lifetime: consume ident chars.
                    let mut j = i + 1;
                    while j < bytes.len() && is_ident_continue(bytes[j]) {
                        j += 1;
                    }
                    let text: String = bytes[i..j].iter().collect();
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        text,
                        line,
                        depth,
                    });
                    i = j;
                    continue;
                }
                _ => {
                    // Char literal: consume to the closing quote, honoring
                    // escapes.
                    let mut j = i + 1;
                    if bytes.get(j) == Some(&'\\') {
                        j += 2;
                    } else {
                        j += 1;
                    }
                    while j < bytes.len() && bytes[j] != '\'' {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        text: String::from("'c'"),
                        line,
                        depth,
                    });
                    i = (j + 1).min(bytes.len());
                    continue;
                }
            }
        }
        // Identifier / keyword (including raw identifiers r#ident).
        if is_ident_start(c) {
            let mut j = i;
            // r#ident raw identifier.
            if (c == 'r' || c == 'b') && bytes.get(i + 1) == Some(&'#') {
                if let Some(n) = bytes.get(i + 2) {
                    if is_ident_start(*n) {
                        j = i + 2;
                    }
                }
            }
            let start = j;
            while j < bytes.len() && is_ident_continue(bytes[j]) {
                j += 1;
            }
            let text: String = bytes[start..j].iter().collect();
            out.tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                depth,
            });
            i = j;
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let mut j = i;
            while j < bytes.len() && (is_ident_continue(bytes[j]) || bytes[j] == '.') {
                // Stop a trailing range like `0..n` from swallowing dots.
                if bytes[j] == '.' && bytes.get(j + 1) == Some(&'.') {
                    break;
                }
                j += 1;
            }
            out.tokens.push(Token {
                kind: TokenKind::Number,
                text: bytes[i..j].iter().collect(),
                line,
                depth,
            });
            i = j;
            continue;
        }
        // Punctuation; braces adjust depth.
        let tok_depth = depth;
        if c == '{' {
            depth += 1;
        } else if c == '}' {
            depth = depth.saturating_sub(1);
        }
        out.tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            depth: tok_depth,
        });
        i += 1;
    }
    out
}

/// If a raw (byte) string starts at `i`, returns `(chars consumed, text)`.
fn raw_string_at(bytes: &[char], i: usize) -> Option<(usize, String)> {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    if bytes.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if bytes.get(j) != Some(&'"') {
        return None;
    }
    j += 1;
    // Find closing `"` followed by `hashes` hashes.
    while j < bytes.len() {
        if bytes[j] == '"' {
            let mut k = j + 1;
            let mut seen = 0usize;
            while seen < hashes && bytes.get(k) == Some(&'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                let text: String = bytes[i..k].iter().collect();
                return Some((k - i, text));
            }
        }
        j += 1;
    }
    // Unterminated raw string: consume the rest.
    let text: String = bytes[i..].iter().collect();
    Some((bytes.len() - i, text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn plain_tokens_with_lines() {
        let l = lex("let x = 1;\nlet y = x;");
        let first = &l.tokens[0];
        assert_eq!(first.text, "let");
        assert_eq!(first.line, 1);
        let y = l.tokens.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.line, 2);
    }

    #[test]
    fn string_contents_do_not_become_idents() {
        assert_eq!(idents(r#"let s = "HashMap unwrap";"#), vec!["let", "s"]);
    }

    #[test]
    fn raw_strings_are_opaque() {
        let src = "let s = r#\"HashMap \"quoted\" unwrap\"#; let t = 2;";
        assert_eq!(idents(src), vec!["let", "s", "let", "t"]);
    }

    #[test]
    fn raw_string_with_many_hashes_and_newlines() {
        let src = "let s = r##\"line1\nHashMap\n\"# not the end\n\"##;\nlet after = 1;";
        let l = lex(src);
        assert!(l.tokens.iter().all(|t| t.text != "HashMap"));
        let after = l.tokens.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 5, "raw-string newlines must advance lines");
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let src = "/* outer /* inner unwrap */ still comment */ let z = 1;";
        assert_eq!(idents(src), vec!["let", "z"]);
    }

    #[test]
    fn line_comment_runs_to_eol() {
        assert_eq!(idents("// HashMap::new()\nlet a = 1;"), vec!["let", "a"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'a' }");
        let lifetimes: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
        let chars: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .collect();
        assert_eq!(chars.len(), 1, "exactly one char literal");
    }

    #[test]
    fn escaped_char_literals() {
        let l = lex(r"let c = '\n'; let q = '\''; let s = 'x';");
        let lits = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Literal)
            .count();
        assert_eq!(lits, 3);
        assert!(l.tokens.iter().all(|t| t.kind != TokenKind::Lifetime));
    }

    #[test]
    fn brace_depth_tracks() {
        let l = lex("fn f() { if x { y(); } }");
        let y = l.tokens.iter().find(|t| t.text == "y").unwrap();
        assert_eq!(y.depth, 2);
        let f = l.tokens.iter().find(|t| t.text == "f").unwrap();
        assert_eq!(f.depth, 0);
    }

    #[test]
    fn suppression_markers_cover_next_line() {
        let src = "// analyzer: allow(no-panic-hot-path)\nx.unwrap();\ny.unwrap();";
        let l = lex(src);
        assert!(l.suppressed("no-panic-hot-path", 1));
        assert!(l.suppressed("no-panic-hot-path", 2));
        assert!(!l.suppressed("no-panic-hot-path", 3));
        assert!(!l.suppressed("other-rule", 2));
    }

    #[test]
    fn suppression_list_in_block_comment() {
        let src = "/* analyzer: allow(rule-a, rule-b) */\ncode();";
        let l = lex(src);
        assert!(l.suppressed("rule-a", 2));
        assert!(l.suppressed("rule-b", 2));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn numbers_do_not_merge_with_ranges() {
        let l = lex("for i in 0..10 {}");
        let nums: Vec<_> = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(nums, vec!["0", "10"]);
    }
}
