//! `fleche-analyzer.toml` parsing.
//!
//! The workspace has no registry access, so instead of depending on the
//! `toml` crate this module parses the small TOML subset the config file
//! actually uses: `[section.sub]` headers, `key = "string"`, and
//! `key = ["a", "b"]` (single- or multi-line), plus `#` comments. Unknown
//! keys are an error — a typoed allow-list entry that silently parses is a
//! lint hole.

use std::collections::BTreeMap;

/// Configuration for one lint rule.
#[derive(Clone, Debug, Default)]
pub struct RuleConfig {
    /// Path prefixes (relative to the workspace root) the rule applies to.
    pub paths: Vec<String>,
    /// Path prefixes exempted from the rule, each standing for a reviewed
    /// justification (deterministic by construction, documented panic, ...).
    pub allow: Vec<String>,
    /// Config-file line of each `allow` entry (parallel to `allow`), so
    /// the stale-allow audit can point at the exact entry to drop.
    pub allow_lines: Vec<u32>,
    /// Extra string settings (rule-specific, e.g. `doc` for
    /// cost-constants).
    pub settings: BTreeMap<String, String>,
    /// Extra list settings (rule-specific, e.g. `structs`).
    pub lists: BTreeMap<String, Vec<String>>,
}

impl RuleConfig {
    /// True when `path` (workspace-relative, `/`-separated) is covered by
    /// `paths` and not exempted by `allow`.
    pub fn applies_to(&self, path: &str) -> bool {
        let covered = self.paths.iter().any(|p| path.starts_with(p.as_str()));
        let allowed = self.allow.iter().any(|p| path.starts_with(p.as_str()));
        covered && !allowed
    }
}

/// Parsed analyzer configuration: rule id -> rule config.
#[derive(Clone, Debug, Default)]
pub struct AnalyzerConfig {
    /// Per-rule configuration, keyed by rule id.
    pub rules: BTreeMap<String, RuleConfig>,
    /// Display name of the config file (for diagnostics that point at
    /// config lines, e.g. stale allow entries). Set by
    /// [`crate::load_config`]; empty when parsed from a bare string.
    pub source: String,
}

impl AnalyzerConfig {
    /// Rule config for `id`, if the config file declares it.
    pub fn rule(&self, id: &str) -> Option<&RuleConfig> {
        self.rules.get(id)
    }
}

/// A config-file parse error with its line number.
#[derive(Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the offending construct.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn err(line: u32, message: impl Into<String>) -> ConfigError {
    ConfigError {
        line,
        message: message.into(),
    }
}

/// Strips a trailing `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parses one quoted string, returning the contents.
fn parse_string(s: &str, line: u32) -> Result<String, ConfigError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| err(line, format!("expected a quoted string, got `{s}`")))?;
    if inner.contains('"') {
        return Err(err(line, "embedded quotes are not supported"));
    }
    Ok(inner.to_string())
}

/// Parses an array split across one or more source lines, keeping the
/// line number of each entry (stale-allow diagnostics point at entries).
fn parse_array_segments(segments: &[(u32, String)]) -> Result<Vec<(String, u32)>, ConfigError> {
    let mut out = Vec::new();
    for (line, segment) in segments {
        let mut body = segment.as_str();
        body = body.strip_prefix('[').unwrap_or(body);
        body = body.strip_suffix(']').unwrap_or(body);
        for item in body.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            out.push((parse_string(item, *line)?, *line));
        }
    }
    Ok(out)
}

/// Parses `fleche-analyzer.toml` content.
pub fn parse(src: &str) -> Result<AnalyzerConfig, ConfigError> {
    let mut config = AnalyzerConfig::default();
    let mut current: Option<String> = None;
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lineno = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        // Section header.
        if let Some(inner) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            let inner = inner.trim();
            if let Some(rule) = inner.strip_prefix("rules.") {
                if rule.is_empty() {
                    return Err(err(lineno, "empty rule id"));
                }
                config.rules.entry(rule.to_string()).or_default();
                current = Some(rule.to_string());
            } else if inner == "workspace" {
                current = None; // informational section, keys ignored below
            } else {
                return Err(err(lineno, format!("unknown section `[{inner}]`")));
            }
            continue;
        }
        // key = value.
        let Some((key, mut value)) = line
            .split_once('=')
            .map(|(k, v)| (k.trim().to_string(), strip_comment(v).trim().to_string()))
        else {
            return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
        };
        // Multi-line arrays: keep consuming until the closing bracket,
        // remembering each line so array entries keep their line numbers.
        let mut segments: Vec<(u32, String)> = vec![(lineno, value.clone())];
        if value.starts_with('[') && !value.ends_with(']') {
            let mut closed = false;
            for (nidx, next) in lines.by_ref() {
                let next = strip_comment(next).trim();
                value.push(' ');
                value.push_str(next);
                segments.push((nidx as u32 + 1, next.to_string()));
                if next.ends_with(']') {
                    closed = true;
                    break;
                }
            }
            if !closed {
                return Err(err(lineno, "unterminated array"));
            }
        }
        let Some(rule_id) = &current else {
            // [workspace] keys are descriptive only.
            continue;
        };
        let rule = config
            .rules
            .get_mut(rule_id)
            .expect("section header inserted the entry");
        if value.starts_with('[') && value.ends_with(']') {
            let items = parse_array_segments(&segments)?;
            match key.as_str() {
                "paths" => rule.paths = items.into_iter().map(|(s, _)| s).collect(),
                "allow" => {
                    rule.allow_lines = items.iter().map(|&(_, l)| l).collect();
                    rule.allow = items.into_iter().map(|(s, _)| s).collect();
                }
                _ => {
                    rule.lists
                        .insert(key, items.into_iter().map(|(s, _)| s).collect());
                }
            }
        } else {
            let s = parse_string(&value, lineno)?;
            rule.settings.insert(key, s);
        }
    }
    Ok(config)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_arrays() {
        let src = r#"
# comment
[workspace]
root = "."

[rules.hash-iteration]
paths = ["crates/fleche-core", "crates/fleche-store"]
allow = ["crates/fleche-store/src/dedup.rs"] # deterministic by construction

[rules.cost-constants]
spec = "crates/fleche-gpu/src/spec.rs"
structs = ["DeviceSpec", "DramSpec"]
"#;
        let c = parse(src).unwrap();
        let r = c.rule("hash-iteration").unwrap();
        assert_eq!(r.paths.len(), 2);
        assert_eq!(r.allow, vec!["crates/fleche-store/src/dedup.rs"]);
        let cc = c.rule("cost-constants").unwrap();
        assert_eq!(
            cc.settings.get("spec").map(String::as_str),
            Some("crates/fleche-gpu/src/spec.rs")
        );
        assert_eq!(cc.lists.get("structs").unwrap().len(), 2);
    }

    #[test]
    fn multiline_arrays() {
        let src = "[rules.x]\npaths = [\n  \"a\",\n  \"b\", # note\n]\n";
        let c = parse(src).unwrap();
        assert_eq!(c.rule("x").unwrap().paths, vec!["a", "b"]);
    }

    #[test]
    fn applies_to_honors_allow() {
        let src = "[rules.x]\npaths = [\"crates/a\"]\nallow = [\"crates/a/src/ok.rs\"]\n";
        let c = parse(src).unwrap();
        let r = c.rule("x").unwrap();
        assert!(r.applies_to("crates/a/src/bad.rs"));
        assert!(!r.applies_to("crates/a/src/ok.rs"));
        assert!(!r.applies_to("crates/b/src/any.rs"));
    }

    #[test]
    fn unknown_section_is_an_error() {
        let e = parse("[lint.x]\n").unwrap_err();
        assert!(e.message.contains("unknown section"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn bad_value_is_an_error() {
        assert!(parse("[rules.x]\npaths = nope\n").is_err());
        assert!(parse("[rules.x]\npaths\n").is_err());
    }
}
