//! fleche-analyzer: workspace lints for the Fleche reproduction.
//!
//! The simulator's claims rest on two properties no compiler checks for us:
//! *determinism* (same seed, same report, bit for bit) and *bounded tail
//! latency* (no panics or wall-clock reads on serving paths). This crate
//! enforces the repo policies that protect both, using a token-level lexer
//! (no `syn` — the workspace builds offline) driven by
//! `fleche-analyzer.toml`.
//!
//! The companion dynamic checker — the vector-clock happens-before race
//! detector for the simulated GPU — lives in `fleche_gpu::race`, next to
//! the event engine it instruments; this crate covers everything a static
//! pass can see.
//!
//! Usage: `cargo run -p fleche-analyzer -- --root .` or via the
//! `fleche-bench` `analyze` bin, which also drives the race checker.

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{AnalyzerConfig, ConfigError, RuleConfig};
pub use rules::Diagnostic;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never scanned, regardless of config.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "results"];

/// Recursively collects workspace-relative `/`-separated paths of `.rs`
/// files under `root`, sorted, skipping build output and vendored code.
pub fn workspace_rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel) = stack.pop() {
        let dir = root.join(&rel);
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let child = if rel.as_os_str().is_empty() {
                PathBuf::from(name.as_ref())
            } else {
                rel.join(name.as_ref())
            };
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(child);
                }
            } else if ty.is_file() && name.ends_with(".rs") {
                out.push(child.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Loads the config file at `path`.
pub fn load_config(path: &Path) -> Result<AnalyzerConfig, String> {
    let src =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    config::parse(&src).map_err(|e| format!("{}: {e}", path.display()))
}

/// Runs every configured rule over the workspace rooted at `root`.
/// Diagnostics come back sorted by (file, line, rule) so output is stable
/// across runs and platforms — the report doubles as a regression fixture.
pub fn run(root: &Path, config: &AnalyzerConfig) -> io::Result<Vec<Diagnostic>> {
    let files = workspace_rust_files(root)?;
    let mut diagnostics = Vec::new();
    let mut lock_order = rules::LockOrder::default();
    let lock_rule = config.rule(rules::ids::LOCK_ORDER);

    for file in &files {
        let hash = config
            .rule(rules::ids::HASH_ITERATION)
            .is_some_and(|r| r.applies_to(file));
        let panic = config
            .rule(rules::ids::NO_PANIC_HOT_PATH)
            .is_some_and(|r| r.applies_to(file));
        let clock = config
            .rule(rules::ids::NO_WALL_CLOCK)
            .is_some_and(|r| r.applies_to(file));
        let lock = lock_rule.is_some_and(|r| r.applies_to(file));
        if !(hash || panic || clock || lock) {
            continue;
        }
        let src = fs::read_to_string(root.join(file))?;
        let lexed = lexer::lex(&src);
        if hash {
            diagnostics.extend(rules::hash_iteration(file, &lexed));
        }
        if panic {
            diagnostics.extend(rules::no_panic_hot_path(file, &lexed));
        }
        if clock {
            diagnostics.extend(rules::no_wall_clock(file, &lexed));
        }
        if lock {
            lock_order.scan(file, &lexed);
        }
    }
    diagnostics.extend(lock_order.finish());

    if let Some(cc) = config.rule(rules::ids::COST_CONSTANTS) {
        // One doc, one or more spec files: `specs = [...]` lists every
        // file holding calibration structs; the singular `spec = "..."`
        // form is still accepted for single-file configs.
        let mut spec_files = cc.lists.get("specs").cloned().unwrap_or_default();
        if spec_files.is_empty() {
            spec_files.extend(cc.settings.get("spec").cloned());
        }
        if let Some(doc) = cc.settings.get("doc") {
            let doc_src = fs::read_to_string(root.join(doc))?;
            let structs = cc.lists.get("structs").cloned().unwrap_or_default();
            for spec in &spec_files {
                let spec_src = fs::read_to_string(root.join(spec))?;
                diagnostics.extend(rules::cost_constants(
                    spec,
                    &lexer::lex(&spec_src),
                    &structs,
                    doc,
                    &doc_src,
                ));
            }
        }
    }

    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(diagnostics)
}

/// Renders diagnostics the way the CLI prints them, one per line, with a
/// trailing summary line. Empty input renders the all-clear line only.
pub fn render(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    if diagnostics.is_empty() {
        out.push_str("fleche-analyzer: workspace clean\n");
    } else {
        out.push_str(&format!(
            "fleche-analyzer: {} violation(s)\n",
            diagnostics.len()
        ));
    }
    out
}
