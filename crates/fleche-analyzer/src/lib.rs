//! fleche-analyzer: workspace lints for the Fleche reproduction.
//!
//! The simulator's claims rest on two properties no compiler checks for us:
//! *determinism* (same seed, same report, bit for bit) and *bounded tail
//! latency* (no panics or wall-clock reads on serving paths). This crate
//! enforces the repo policies that protect both, using a token-level lexer
//! (no `syn` — the workspace builds offline) driven by
//! `fleche-analyzer.toml`.
//!
//! The companion dynamic checker — the vector-clock happens-before race
//! detector for the simulated GPU — lives in `fleche_gpu::race`, next to
//! the event engine it instruments; this crate covers everything a static
//! pass can see.
//!
//! Usage: `cargo run -p fleche-analyzer -- --root .` or via the
//! `fleche-bench` `analyze` bin, which also drives the race checker.

pub mod config;
pub mod lexer;
pub mod rules;

pub use config::{AnalyzerConfig, ConfigError, RuleConfig};
pub use rules::Diagnostic;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directories never scanned, regardless of config.
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "results"];

/// Recursively collects workspace-relative `/`-separated paths of `.rs`
/// files under `root`, sorted, skipping build output and vendored code.
pub fn workspace_rust_files(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let mut stack = vec![PathBuf::new()];
    while let Some(rel) = stack.pop() {
        let dir = root.join(&rel);
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let child = if rel.as_os_str().is_empty() {
                PathBuf::from(name.as_ref())
            } else {
                rel.join(name.as_ref())
            };
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(child);
                }
            } else if ty.is_file() && name.ends_with(".rs") {
                out.push(child.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Loads the config file at `path`.
pub fn load_config(path: &Path) -> Result<AnalyzerConfig, String> {
    let src =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let mut cfg = config::parse(&src).map_err(|e| format!("{}: {e}", path.display()))?;
    cfg.source = path.file_name().map_or_else(
        || path.display().to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    Ok(cfg)
}

/// Runs every configured rule over the workspace rooted at `root`.
/// Diagnostics come back sorted by (file, line, rule) so output is stable
/// across runs and platforms — the report doubles as a regression fixture.
///
/// Rules emit raw findings; suppression happens here, centrally: inline
/// `analyzer: allow(...)` markers first, then the rule's config
/// allow-list. Both record what they actually suppressed, and when the
/// config declares `[rules.stale-allow]`, any marker or allow entry that
/// suppressed nothing becomes a `stale-allow` diagnostic — allow-listed
/// files are still scanned (their findings just feed the audit instead
/// of the report), so a stale entry cannot hide behind its own
/// exemption.
pub fn run(root: &Path, config: &AnalyzerConfig) -> io::Result<Vec<Diagnostic>> {
    let files = workspace_rust_files(root)?;
    let mut diagnostics = Vec::new();
    let mut lock_order = rules::LockOrder::default();
    let lock_rule = config.rule(rules::ids::LOCK_ORDER);
    let stale_rule = config.rule(rules::ids::STALE_ALLOW);

    // The per-file rules, with their settings resolved once. Each entry:
    // (id, rule config, raw-diagnostics fn).
    type RuleFn<'a> = Box<dyn Fn(&str, &lexer::Lexed) -> Vec<Diagnostic> + 'a>;
    let mut per_file: Vec<(&'static str, &config::RuleConfig, RuleFn)> = Vec::new();
    if let Some(r) = config.rule(rules::ids::HASH_ITERATION) {
        per_file.push((
            rules::ids::HASH_ITERATION,
            r,
            Box::new(rules::hash_iteration),
        ));
    }
    if let Some(r) = config.rule(rules::ids::NO_PANIC_HOT_PATH) {
        per_file.push((
            rules::ids::NO_PANIC_HOT_PATH,
            r,
            Box::new(rules::no_panic_hot_path),
        ));
    }
    if let Some(r) = config.rule(rules::ids::NO_WALL_CLOCK) {
        per_file.push((rules::ids::NO_WALL_CLOCK, r, Box::new(rules::no_wall_clock)));
    }
    if let Some(r) = config.rule(rules::ids::CONDVAR_WAIT_LOOP) {
        per_file.push((
            rules::ids::CONDVAR_WAIT_LOOP,
            r,
            Box::new(rules::condvar_wait_loop),
        ));
    }
    if let Some(r) = config.rule(rules::ids::LOCK_ACROSS_HOT_PATH) {
        let hot: Vec<String> = r.lists.get("hot_calls").cloned().unwrap_or_else(|| {
            rules::DEFAULT_HOT_CALLS
                .iter()
                .map(|s| s.to_string())
                .collect()
        });
        per_file.push((
            rules::ids::LOCK_ACROSS_HOT_PATH,
            r,
            Box::new(move |f, l| rules::lock_across_hot_path(f, l, &hot)),
        ));
    }
    if let Some(r) = config.rule(rules::ids::TARGET_FEATURE_GUARD) {
        per_file.push((
            rules::ids::TARGET_FEATURE_GUARD,
            r,
            Box::new(rules::target_feature_guard),
        ));
    }
    if let Some(r) = config.rule(rules::ids::SLOT_RESOURCE_COVERAGE) {
        let receiver = r
            .settings
            .get("receiver")
            .cloned()
            .unwrap_or_else(|| "cache".to_string());
        let mutators = r.lists.get("mutators").cloned().unwrap_or_default();
        let markers = r.lists.get("markers").cloned().unwrap_or_default();
        per_file.push((
            rules::ids::SLOT_RESOURCE_COVERAGE,
            r,
            Box::new(move |f, l| {
                rules::slot_resource_coverage(f, l, &receiver, &mutators, &markers)
            }),
        ));
    }

    // Config-allow usage, per rule id (parallel to each rule's `allow`).
    let mut allow_used: std::collections::BTreeMap<&'static str, Vec<bool>> = per_file
        .iter()
        .map(|(id, r, _)| (*id, vec![false; r.allow.len()]))
        .collect();

    for file in &files {
        let stale_here = stale_rule.is_some_and(|r| r.applies_to(file));
        // (rule index, matching allow-entry index if the file is exempt).
        let work: Vec<(usize, Option<usize>)> = per_file
            .iter()
            .enumerate()
            .filter(|(_, (_, r, _))| r.paths.iter().any(|p| file.starts_with(p.as_str())))
            .map(|(idx, (_, r, _))| {
                (
                    idx,
                    r.allow.iter().position(|p| file.starts_with(p.as_str())),
                )
            })
            .collect();
        let lock = lock_rule.is_some_and(|r| r.applies_to(file));
        if work.is_empty() && !lock && !stale_here {
            continue;
        }
        let src = fs::read_to_string(root.join(file))?;
        let lexed = lexer::lex(&src);
        let mut marker_used = vec![false; lexed.suppressions.len()];
        for (idx, allow_idx) in work {
            let (id, _, rule_fn) = &per_file[idx];
            for d in rule_fn(file, &lexed) {
                let marker = lexed
                    .suppressions
                    .iter()
                    .position(|s| s.rule == *id && (s.line == d.line || s.line + 1 == d.line));
                if let Some(si) = marker {
                    marker_used[si] = true;
                } else if let Some(ai) = allow_idx {
                    allow_used.get_mut(id).expect("rule registered")[ai] = true;
                } else {
                    diagnostics.push(d);
                }
            }
        }
        if lock {
            lock_order.scan(file, &lexed);
        }
        if stale_here {
            for (si, s) in lexed.suppressions.iter().enumerate() {
                if !marker_used[si] {
                    diagnostics.push(Diagnostic {
                        rule: rules::ids::STALE_ALLOW,
                        file: file.clone(),
                        line: s.line,
                        message: format!(
                            "inline `analyzer: allow({})` suppresses nothing: the \
                             violation it excused is gone — remove the marker",
                            s.rule
                        ),
                    });
                }
            }
        }
    }
    diagnostics.extend(lock_order.finish());

    // Config allow entries that silenced nothing anywhere.
    if stale_rule.is_some() {
        let source = if config.source.is_empty() {
            "fleche-analyzer.toml".to_string()
        } else {
            config.source.clone()
        };
        for (id, r, _) in &per_file {
            for (ai, used) in allow_used[id].iter().enumerate() {
                if !used {
                    diagnostics.push(Diagnostic {
                        rule: rules::ids::STALE_ALLOW,
                        file: source.clone(),
                        line: r.allow_lines.get(ai).copied().unwrap_or(0),
                        message: format!(
                            "config allow entry `{}` for rule `{id}` suppresses \
                             nothing — drop it or retarget it",
                            r.allow[ai]
                        ),
                    });
                }
            }
        }
    }

    if let Some(cc) = config.rule(rules::ids::COST_CONSTANTS) {
        // One doc, one or more spec files: `specs = [...]` lists every
        // file holding calibration structs; the singular `spec = "..."`
        // form is still accepted for single-file configs.
        let mut spec_files = cc.lists.get("specs").cloned().unwrap_or_default();
        if spec_files.is_empty() {
            spec_files.extend(cc.settings.get("spec").cloned());
        }
        if let Some(doc) = cc.settings.get("doc") {
            let doc_src = fs::read_to_string(root.join(doc))?;
            let structs = cc.lists.get("structs").cloned().unwrap_or_default();
            for spec in &spec_files {
                let spec_src = fs::read_to_string(root.join(spec))?;
                diagnostics.extend(rules::cost_constants(
                    spec,
                    &lexer::lex(&spec_src),
                    &structs,
                    doc,
                    &doc_src,
                ));
            }
        }
    }

    diagnostics.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(diagnostics)
}

/// Renders diagnostics the way the CLI prints them, one per line, with a
/// trailing summary line. Empty input renders the all-clear line only.
pub fn render(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    if diagnostics.is_empty() {
        out.push_str("fleche-analyzer: workspace clean\n");
    } else {
        out.push_str(&format!(
            "fleche-analyzer: {} violation(s)\n",
            diagnostics.len()
        ));
    }
    out
}
