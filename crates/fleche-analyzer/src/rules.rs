//! The lint rules.
//!
//! Every rule consumes the token stream of [`crate::lexer::lex`] plus the
//! rule's [`crate::config::RuleConfig`] and emits [`Diagnostic`]s. Rules are token-level
//! heuristics, deliberately conservative: they flag constructs whose mere
//! *presence* in a determinism- or latency-critical file is a repo-policy
//! violation, and the per-path / inline allow-lists carry the reviewed
//! exceptions. Code inside `#[cfg(test)]` modules is exempt everywhere —
//! tests may unwrap and hash freely.
//!
//! | id | policy |
//! |---|---|
//! | `hash-iteration` | no `HashMap`/`HashSet` in determinism-critical files (iteration order would leak into benchmark output) |
//! | `no-panic-hot-path` | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!` in serving hot paths |
//! | `no-wall-clock` | no `Instant::now`/`SystemTime` inside the simulation (simulated time only) |
//! | `lock-order` | every function must acquire `Mutex`/`RwLock` guards in one global order |
//! | `cost-constants` | every public cost-model field of the GPU spec structs is documented in DESIGN.md |
//! | `condvar-wait-loop` | every `Condvar::wait` must sit inside a `while`/`loop` re-check |
//! | `lock-across-await-free-hot-path` | no lock guard held across an engine/cache batch call |
//! | `slot-resource-coverage` | every cache-mutating function declares its slots to the race checker |
//! | `target-feature-guard` | `#[target_feature]` fns stay file-private and are only called behind `is_x86_feature_detected!` |
//! | `stale-allow` | every allow entry (inline or config) must still suppress something |
//!
//! Rules emit *raw* diagnostics; [`crate::run`] applies inline
//! suppressions and config allow-lists centrally, recording which were
//! used so `stale-allow` can flag the rest.

use crate::lexer::{Lexed, Token, TokenKind};
use std::collections::BTreeMap;

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule id (stable, used in allow-lists).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What went wrong and how to fix it.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Rule id constants (single source for code, config, and docs).
pub mod ids {
    /// No `HashMap`/`HashSet` in determinism-critical modules.
    pub const HASH_ITERATION: &str = "hash-iteration";
    /// No panicking calls in serving hot paths.
    pub const NO_PANIC_HOT_PATH: &str = "no-panic-hot-path";
    /// No wall-clock reads inside the simulation.
    pub const NO_WALL_CLOCK: &str = "no-wall-clock";
    /// Consistent lock acquisition order.
    pub const LOCK_ORDER: &str = "lock-order";
    /// Cost-model constants must be documented.
    pub const COST_CONSTANTS: &str = "cost-constants";
    /// Condvar waits must re-check their predicate in a loop.
    pub const CONDVAR_WAIT_LOOP: &str = "condvar-wait-loop";
    /// No lock guard live across a batch-execution call.
    pub const LOCK_ACROSS_HOT_PATH: &str = "lock-across-await-free-hot-path";
    /// Cache-slot mutations must be declared to the race checker.
    pub const SLOT_RESOURCE_COVERAGE: &str = "slot-resource-coverage";
    /// `#[target_feature]` fns must stay private and guarded.
    pub const TARGET_FEATURE_GUARD: &str = "target-feature-guard";
    /// Allow entries that no longer suppress anything are themselves
    /// violations.
    pub const STALE_ALLOW: &str = "stale-allow";
}

/// Marks the token ranges (by index) covered by `#[cfg(test)] mod ... { }`
/// blocks so rules can skip test code. Returns a bool per token.
fn test_code_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        // Match the sequence: # [ cfg ( test ) ] ... mod ident {
        if tokens[i].text == "#" && matches(tokens, i + 1, &["[", "cfg", "(", "test", ")", "]"]) {
            // Find the `mod` that follows (attributes may stack).
            let mut j = i + 7;
            while j < tokens.len() && tokens[j].text != "mod" {
                // Another attribute or doc comment tokens; stop if we hit
                // something that clearly is not part of an item header.
                if tokens[j].text == "{" || tokens[j].text == "}" {
                    break;
                }
                j += 1;
            }
            if j < tokens.len() && tokens[j].text == "mod" {
                // Find the opening brace, then mask to its matching close.
                let mut k = j;
                while k < tokens.len() && tokens[k].text != "{" {
                    k += 1;
                }
                if k < tokens.len() {
                    // The lexer stamps `{` with its pre-increment depth and
                    // `}` with its pre-decrement depth, so the matching
                    // close brace sits at open_depth + 1.
                    let close_depth = tokens[k].depth + 1;
                    let mut m = k;
                    loop {
                        mask[m] = true;
                        m += 1;
                        if m >= tokens.len() {
                            break;
                        }
                        if tokens[m].text == "}" && tokens[m].depth == close_depth {
                            mask[m] = true;
                            break;
                        }
                    }
                    // Also mask the attribute/header tokens themselves.
                    for slot in mask.iter_mut().take(k).skip(i) {
                        *slot = true;
                    }
                    i = m + 1;
                    continue;
                }
            }
        }
        i += 1;
    }
    mask
}

fn matches(tokens: &[Token], start: usize, texts: &[&str]) -> bool {
    texts
        .iter()
        .enumerate()
        .all(|(k, t)| tokens.get(start + k).is_some_and(|tok| tok.text == *t))
}

fn push(out: &mut Vec<Diagnostic>, rule: &'static str, file: &str, line: u32, message: String) {
    out.push(Diagnostic {
        rule,
        file: file.to_string(),
        line,
        message,
    });
}

/// `hash-iteration`: flags any `HashMap`/`HashSet` mention. Token-level
/// analysis cannot prove a map is never iterated, so determinism-critical
/// files must not use randomized-order containers at all; `BTreeMap`,
/// `BTreeSet`, sorted `Vec`s, or an allow-list entry (for uses that sort
/// before iterating) are the ways out.
pub fn hash_iteration(file: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let mask = test_code_mask(&lexed.tokens);
    let mut out = Vec::new();
    for (i, t) in lexed.tokens.iter().enumerate() {
        if mask[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            push(
                &mut out,
                ids::HASH_ITERATION,
                file,
                t.line,
                format!(
                    "`{}` in a determinism-critical module: iteration order is \
                     randomized per process; use BTreeMap/BTreeSet or a sorted Vec",
                    t.text
                ),
            );
        }
    }
    out
}

const PANIC_MACROS: [&str; 3] = ["panic", "unreachable", "todo"];

/// `no-panic-hot-path`: flags `.unwrap()`, `.expect(`, `panic!`,
/// `unreachable!`, and `todo!` outside test modules.
pub fn no_panic_hot_path(file: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let mask = test_code_mask(tokens);
    let mut out = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || t.kind != TokenKind::Ident {
            continue;
        }
        let is_call = |name: &str| {
            t.text == name
                && i > 0
                && tokens[i - 1].text == "."
                && tokens.get(i + 1).is_some_and(|n| n.text == "(")
        };
        if is_call("unwrap") || is_call("expect") {
            push(
                &mut out,
                ids::NO_PANIC_HOT_PATH,
                file,
                t.line,
                format!(
                    "`.{}()` on a serving hot path: propagate the error or \
                     degrade gracefully instead of panicking",
                    t.text
                ),
            );
        } else if PANIC_MACROS.contains(&t.text.as_str())
            && tokens.get(i + 1).is_some_and(|n| n.text == "!")
        {
            // `debug_assert!`/`assert!` are allowed (they express invariants,
            // and debug_assert compiles out of release serving builds).
            push(
                &mut out,
                ids::NO_PANIC_HOT_PATH,
                file,
                t.line,
                format!("`{}!` on a serving hot path", t.text),
            );
        }
    }
    out
}

/// `no-wall-clock`: flags `Instant`, `SystemTime`, and
/// `std::time::*::now()` mentions. The simulation must derive every
/// timestamp from `Ns` simulated time; a wall-clock read silently breaks
/// replay determinism.
pub fn no_wall_clock(file: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let mask = test_code_mask(&lexed.tokens);
    let mut out = Vec::new();
    for (i, t) in lexed.tokens.iter().enumerate() {
        if mask[i] || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            push(
                &mut out,
                ids::NO_WALL_CLOCK,
                file,
                t.line,
                format!(
                    "`{}` inside the simulation: all time must flow from the \
                     simulated `Ns` clock, never the host's",
                    t.text
                ),
            );
        }
    }
    out
}

/// `lock-order`: within each function body, records the order in which
/// distinct named locks are acquired (`x.lock()`, `x.read()`, `x.write()`
/// where `x` is the receiver identifier chain's last segment). Builds a
/// global acquired-before graph across the workspace; a cycle means two
/// functions take the same pair of locks in opposite orders — the classic
/// deadlock and, in the simulator, a source of order-dependent behavior.
///
/// This is a cross-file rule: call [`LockOrder::scan`] per file, then
/// [`LockOrder::finish`].
#[derive(Default)]
pub struct LockOrder {
    /// Edge (a, b) -> first witness: lock a was held when b was acquired.
    edges: BTreeMap<(String, String), (String, u32)>,
}

const LOCK_METHODS: [&str; 3] = ["lock", "read", "write"];

impl LockOrder {
    /// Scans one file, accumulating acquisition-order edges.
    pub fn scan(&mut self, file: &str, lexed: &Lexed) {
        let tokens = &lexed.tokens;
        let mask = test_code_mask(tokens);
        // Split into function bodies: a `fn` keyword, then its brace block.
        let mut i = 0usize;
        while i < tokens.len() {
            if mask[i] || tokens[i].text != "fn" {
                i += 1;
                continue;
            }
            // Find the body's opening brace at the same or deeper depth.
            let mut k = i + 1;
            while k < tokens.len() && tokens[k].text != "{" && tokens[k].text != ";" {
                k += 1;
            }
            if k >= tokens.len() || tokens[k].text == ";" {
                i = k + 1;
                continue;
            }
            let close_depth = tokens[k].depth + 1;
            let mut m = k + 1;
            let mut held: Vec<String> = Vec::new();
            while m < tokens.len() {
                if tokens[m].text == "}" && tokens[m].depth == close_depth {
                    break;
                }
                // receiver . method ( )
                if tokens[m].kind == TokenKind::Ident
                    && LOCK_METHODS.contains(&tokens[m].text.as_str())
                    && m > 1
                    && tokens[m - 1].text == "."
                    && tokens[m - 2].kind == TokenKind::Ident
                    && tokens.get(m + 1).is_some_and(|n| n.text == "(")
                    && tokens.get(m + 2).is_some_and(|n| n.text == ")")
                {
                    let receiver = tokens[m - 2].text.clone();
                    // `.read()`/`.write()` are everywhere (io, channels);
                    // only receivers that *name* a lock participate.
                    let is_lock = tokens[m].text == "lock"
                        || receiver.ends_with("lock")
                        || receiver.ends_with("mutex")
                        || receiver.ends_with("rwlock");
                    if is_lock {
                        for h in &held {
                            if h != &receiver {
                                self.edges
                                    .entry((h.clone(), receiver.clone()))
                                    .or_insert_with(|| (file.to_string(), tokens[m].line));
                            }
                        }
                        held.push(receiver);
                    }
                }
                m += 1;
            }
            i = m + 1;
        }
    }

    /// Reports one diagnostic per opposite-order lock pair.
    pub fn finish(self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        for ((a, b), (file, line)) in &self.edges {
            if a < b {
                if let Some((file2, line2)) = self.edges.get(&(b.clone(), a.clone())) {
                    out.push(Diagnostic {
                        rule: ids::LOCK_ORDER,
                        file: file.clone(),
                        line: *line,
                        message: format!(
                            "locks `{a}` and `{b}` are acquired in opposite orders \
                             ({file}:{line} takes {a} then {b}; {file2}:{line2} takes \
                             {b} then {a}): pick one global order"
                        ),
                    });
                }
            }
        }
        out
    }
}

/// `cost-constants`: every `pub` field of the configured structs in the
/// spec file must be mentioned by name in the design doc. The cost model
/// is the simulator's ground truth; an undocumented constant is an
/// uncalibrated one.
pub fn cost_constants(
    spec_file: &str,
    lexed: &Lexed,
    structs: &[String],
    doc_file: &str,
    doc_text: &str,
) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // pub struct Name {
        if tokens[i].text == "pub"
            && tokens.get(i + 1).is_some_and(|t| t.text == "struct")
            && tokens
                .get(i + 2)
                .is_some_and(|t| structs.iter().any(|s| s == &t.text))
        {
            let mut k = i + 3;
            while k < tokens.len() && tokens[k].text != "{" {
                k += 1;
            }
            if k >= tokens.len() {
                break;
            }
            let close_depth = tokens[k].depth + 1;
            let mut m = k + 1;
            while m < tokens.len() {
                if tokens[m].text == "}" && tokens[m].depth == close_depth {
                    break;
                }
                // pub field_name :
                if tokens[m].text == "pub"
                    && tokens
                        .get(m + 1)
                        .is_some_and(|t| t.kind == TokenKind::Ident)
                    && tokens.get(m + 2).is_some_and(|t| t.text == ":")
                {
                    let field = &tokens[m + 1];
                    if !doc_text.contains(&field.text) {
                        out.push(Diagnostic {
                            rule: ids::COST_CONSTANTS,
                            file: spec_file.to_string(),
                            line: field.line,
                            message: format!(
                                "cost-model constant `{}::{}` is not referenced in \
                                 {doc_file}: document its calibration",
                                tokens[i + 2].text,
                                field.text
                            ),
                        });
                    }
                    m += 3;
                    continue;
                }
                m += 1;
            }
            i = m;
            continue;
        }
        i += 1;
    }
    out
}

/// `condvar-wait-loop`: a `Condvar::wait`/`wait_timeout` call (any
/// `.wait(x)`-shaped call with an argument — `Barrier::wait()` takes
/// none) must sit inside a `while` or `loop` body, so the woken thread
/// re-checks its predicate: between `notify` and wakeup another thread
/// can barge in and invalidate the condition (`fleche-verify`'s
/// `queue/if-wait` mutant is the schedule that breaks the `if` form).
/// `wait_while`/`wait_timeout_while` re-check internally and are exempt.
pub fn condvar_wait_loop(file: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let mask = test_code_mask(tokens);
    let mut out = Vec::new();
    // Block-kind stack: does the innermost-to-outermost chain of open
    // braces contain a `while` or `loop` body?
    let mut stack: Vec<bool> = Vec::new();
    let mut pending_loop = false;
    for (i, t) in tokens.iter().enumerate() {
        match t.text.as_str() {
            "while" | "loop" => pending_loop = true,
            ";" => pending_loop = false,
            "{" => {
                stack.push(pending_loop);
                pending_loop = false;
            }
            "}" => {
                stack.pop();
                pending_loop = false;
            }
            "wait" | "wait_timeout" => {
                if mask[i]
                    || t.kind != TokenKind::Ident
                    || i == 0
                    || tokens[i - 1].text != "."
                    || !tokens.get(i + 1).is_some_and(|n| n.text == "(")
                    || !tokens.get(i + 2).is_some_and(|n| n.text != ")")
                {
                    continue;
                }
                if !stack.iter().any(|&l| l) {
                    push(
                        &mut out,
                        ids::CONDVAR_WAIT_LOOP,
                        file,
                        t.line,
                        format!(
                            "`.{}(..)` outside a `while`/`loop` re-check: a woken \
                             waiter must re-test its predicate (another thread can \
                             barge in between notify and wakeup)",
                            t.text
                        ),
                    );
                }
            }
            _ => {}
        }
    }
    out
}

/// Default batch-execution calls for `lock-across-await-free-hot-path`
/// (override with a `hot_calls` list in the config).
pub(crate) const DEFAULT_HOT_CALLS: [&str; 5] = [
    "execute",
    "run_batch",
    "run_batch_prepared",
    "query_batch",
    "query_batch_prepared",
];

/// `lock-across-await-free-hot-path`: no lock guard may be live across a
/// batch-execution call. The serving path has no `await`, so a held
/// guard blocks every sibling worker for a whole device batch — the
/// convoy the sharded queue exists to avoid. Guards are `let`-bound
/// lock acquisitions (same receiver heuristic as `lock-order`); they die
/// at end of scope or an explicit `drop(guard)`.
pub fn lock_across_hot_path(file: &str, lexed: &Lexed, hot_calls: &[String]) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let mask = test_code_mask(tokens);
    let mut out = Vec::new();
    // Live guards: (name, brace depth of the binding).
    let mut guards: Vec<(String, u32)> = Vec::new();
    // Ident bound by the `let` currently being scanned, if any.
    let mut binding: Option<String> = None;
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        match t.text.as_str() {
            "let" => {
                let mut k = i + 1;
                while tokens.get(k).is_some_and(|n| n.text == "mut") {
                    k += 1;
                }
                binding = tokens
                    .get(k)
                    .filter(|n| n.kind == TokenKind::Ident)
                    .map(|n| n.text.clone());
            }
            ";" => binding = None,
            "}" => guards.retain(|&(_, d)| d < t.depth),
            "drop" if tokens.get(i + 1).is_some_and(|n| n.text == "(") => {
                if let Some(victim) = tokens.get(i + 2) {
                    guards.retain(|(name, _)| name != &victim.text);
                }
            }
            _ => {}
        }
        // A lock acquisition bound by the pending `let`.
        if LOCK_METHODS.contains(&t.text.as_str())
            && i > 1
            && tokens[i - 1].text == "."
            && tokens[i - 2].kind == TokenKind::Ident
            && tokens.get(i + 1).is_some_and(|n| n.text == "(")
            && tokens.get(i + 2).is_some_and(|n| n.text == ")")
        {
            let receiver = &tokens[i - 2].text;
            let is_lock = t.text == "lock"
                || receiver.ends_with("lock")
                || receiver.ends_with("mutex")
                || receiver.ends_with("rwlock");
            if is_lock {
                if let Some(name) = binding.take() {
                    guards.push((name, t.depth));
                }
            }
        }
        // A hot call while any guard is live.
        if t.kind == TokenKind::Ident
            && hot_calls.iter().any(|h| h == &t.text)
            && i > 0
            && tokens[i - 1].text == "."
            && tokens.get(i + 1).is_some_and(|n| n.text == "(")
        {
            if let Some((guard, _)) = guards.first() {
                push(
                    &mut out,
                    ids::LOCK_ACROSS_HOT_PATH,
                    file,
                    t.line,
                    format!(
                        "`.{}(..)` called while lock guard `{guard}` is live: \
                         release (or `drop`) the guard before running a batch, \
                         or every sibling worker convoys behind this one",
                        t.text
                    ),
                );
            }
        }
    }
    out
}

/// `slot-resource-coverage`: any function that calls a configured
/// cache-mutating method on a cache-named receiver must also mention a
/// race-checker resource declaration (`slot_resource`/`ledger_resource`)
/// somewhere in its body — otherwise the dynamic race checker is blind
/// to those slot writes and its replay proves nothing about them.
pub fn slot_resource_coverage(
    file: &str,
    lexed: &Lexed,
    receiver: &str,
    mutators: &[String],
    markers: &[String],
) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let mask = test_code_mask(tokens);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if mask[i] || tokens[i].text != "fn" {
            i += 1;
            continue;
        }
        let mut k = i + 1;
        while k < tokens.len() && tokens[k].text != "{" && tokens[k].text != ";" {
            k += 1;
        }
        if k >= tokens.len() || tokens[k].text == ";" {
            i = k + 1;
            continue;
        }
        let close_depth = tokens[k].depth + 1;
        let mut m = k + 1;
        // First undeclared mutation call in this fn, and whether any
        // resource-declaration marker appears.
        let mut first_mutation: Option<(u32, String)> = None;
        let mut declared = false;
        while m < tokens.len() {
            if tokens[m].text == "}" && tokens[m].depth == close_depth {
                break;
            }
            let t = &tokens[m];
            if t.kind == TokenKind::Ident {
                if markers.iter().any(|mk| mk == &t.text) {
                    declared = true;
                }
                if mutators.iter().any(|mu| mu == &t.text)
                    && m > 1
                    && tokens[m - 1].text == "."
                    && tokens[m - 2].kind == TokenKind::Ident
                    && tokens[m - 2].text.ends_with(receiver)
                    && tokens.get(m + 1).is_some_and(|n| n.text == "(")
                    && first_mutation.is_none()
                {
                    first_mutation = Some((t.line, format!("{}.{}", tokens[m - 2].text, t.text)));
                }
            }
            m += 1;
        }
        if let (Some((line, call)), false) = (&first_mutation, declared) {
            push(
                &mut out,
                ids::SLOT_RESOURCE_COVERAGE,
                file,
                *line,
                format!(
                    "`{call}(..)` mutates cache slots, but the enclosing function \
                     declares no {} resource: the race checker cannot see these \
                     writes",
                    markers.join("/")
                ),
            );
        }
        i = m + 1;
    }
    out
}

/// `target-feature-guard`: a `#[target_feature(enable = ...)]` function
/// compiles against an ISA the host may not have, so every call site must
/// be dominated by a runtime `is_x86_feature_detected!` check — calling
/// one on a CPU without the feature is immediate undefined behavior, not
/// a graceful fallback. Token-level analysis is per-file, so the rule
/// enforces the two properties that keep per-file reasoning sound:
///
/// 1. a `#[target_feature]` fn must not be bare-`pub` (restricted forms
///    like `pub(super)` are fine when the module is file-local): an
///    exported specialization can be called from files this pass never
///    correlates with a guard;
/// 2. any function in the same file that calls a `#[target_feature]` fn
///    must mention `is_x86_feature_detected` in its body, unless it is
///    itself a `#[target_feature]` fn (same-ISA calls need no re-check).
///
/// Test modules are *not* exempt here — a test calling an AVX2 fn
/// unguarded SIGILLs the suite on older hardware just as surely.
pub fn target_feature_guard(file: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let tokens = &lexed.tokens;
    let mut out = Vec::new();
    // Pass 1: collect every `#[target_feature]` fn — its name, whether it
    // is exported, and the token index of its `fn` keyword (so pass 2 can
    // skip those bodies).
    let mut tf_names: Vec<String> = Vec::new();
    let mut tf_fn_tokens: Vec<usize> = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let is_attr = tokens[i].text == "target_feature"
            && i >= 2
            && tokens[i - 1].text == "["
            && tokens[i - 2].text == "#";
        if !is_attr {
            i += 1;
            continue;
        }
        // Walk the rest of the item header (attributes stack) for the
        // visibility and the `fn` name.
        let mut is_pub = false;
        let mut j = i + 1;
        let mut name_idx: Option<usize> = None;
        while j < tokens.len() {
            match tokens[j].text.as_str() {
                "pub" => {
                    // `pub(super)` / `pub(crate)` keep the fn inside the
                    // module tree this file defines; bare `pub` does not.
                    if !tokens.get(j + 1).is_some_and(|n| n.text == "(") {
                        is_pub = true;
                    }
                    j += 1;
                }
                "fn" => {
                    name_idx = Some(j + 1);
                    break;
                }
                "{" | "}" | ";" => break,
                _ => j += 1,
            }
        }
        let Some(ni) = name_idx else {
            i += 1;
            continue;
        };
        let name = tokens[ni].text.clone();
        if is_pub {
            push(
                &mut out,
                ids::TARGET_FEATURE_GUARD,
                file,
                tokens[ni].line,
                format!(
                    "`#[target_feature]` fn `{name}` is exported as `pub`: callers \
                     in other files can bypass the CPU-feature guard; keep \
                     feature-specialized fns file-private behind a detecting \
                     dispatcher"
                ),
            );
        }
        tf_names.push(name);
        tf_fn_tokens.push(ni - 1);
        i = ni + 1;
    }
    if tf_names.is_empty() {
        return out;
    }
    // Pass 2: every other fn body that calls a `#[target_feature]` fn
    // must consult the runtime feature check somewhere in that body.
    let mut m = 0usize;
    while m < tokens.len() {
        if tokens[m].text != "fn" || tf_fn_tokens.contains(&m) {
            m += 1;
            continue;
        }
        let mut k = m + 1;
        while k < tokens.len() && tokens[k].text != "{" && tokens[k].text != ";" {
            k += 1;
        }
        if k >= tokens.len() || tokens[k].text == ";" {
            m = k + 1;
            continue;
        }
        let close_depth = tokens[k].depth + 1;
        let mut end = k + 1;
        let mut guarded = false;
        let mut calls: Vec<(u32, String)> = Vec::new();
        while end < tokens.len() {
            let t = &tokens[end];
            if t.text == "}" && t.depth == close_depth {
                break;
            }
            if t.kind == TokenKind::Ident {
                if t.text == "is_x86_feature_detected" {
                    guarded = true;
                } else if tf_names.contains(&t.text)
                    && tokens.get(end + 1).is_some_and(|n| n.text == "(")
                {
                    calls.push((t.line, t.text.clone()));
                }
            }
            end += 1;
        }
        if !guarded {
            for (line, name) in calls {
                push(
                    &mut out,
                    ids::TARGET_FEATURE_GUARD,
                    file,
                    line,
                    format!(
                        "`{name}(..)` is a `#[target_feature]` fn, but the calling \
                         function never checks `is_x86_feature_detected!`: on a \
                         CPU without the feature this call is undefined behavior"
                    ),
                );
            }
        }
        m = end + 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn hash_rule_flags_raw_mentions() {
        let src =
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
        let d = hash_iteration("x.rs", &lex(src));
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].line, 1);
        // Rules emit raw diagnostics; `run` filters inline allows
        // centrally (so it can flag the stale ones).
        let src = "// analyzer: allow(hash-iteration)\nuse std::collections::HashSet;";
        assert_eq!(hash_iteration("x.rs", &lex(src)).len(), 1);
    }

    #[test]
    fn hash_rule_skips_tests_strings_and_comments() {
        let src = r#"
fn f() { let s = "HashMap"; } // HashMap in comment
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn g() { let _m: HashMap<u8, u8> = HashMap::new(); }
}
"#;
        assert!(hash_iteration("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn panic_rule_flags_calls_and_macros() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g() { panic!(\"boom\"); }\nfn h(r: Result<u8, u8>) { r.expect(\"msg\"); }";
        let d = no_panic_hot_path("x.rs", &lex(src));
        let rules: Vec<u32> = d.iter().map(|d| d.line).collect();
        assert_eq!(rules, vec![1, 2, 3]);
    }

    #[test]
    fn panic_rule_ignores_idents_named_unwrap_and_asserts() {
        // `unwrap_or`, a fn called `unwrap` without a receiver, and
        // debug_assert! are all fine.
        let src =
            "fn f(x: Option<u8>) { x.unwrap_or(0); unwrap(); debug_assert!(true); assert!(true); }";
        assert!(no_panic_hot_path("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn wall_clock_rule() {
        let src = "fn f() { let t = Instant::now(); }";
        let d = no_wall_clock("x.rs", &lex(src));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("Instant"));
        assert!(no_wall_clock("x.rs", &lex("fn f() { now(); }")).is_empty());
    }

    #[test]
    fn lock_order_detects_inversion() {
        let mut lo = LockOrder::default();
        lo.scan(
            "a.rs",
            &lex("fn f(a: M, b: M) { let g1 = alock.lock(); let g2 = block.lock(); }"),
        );
        lo.scan(
            "b.rs",
            &lex("fn g(a: M, b: M) { let g2 = block.lock(); let g1 = alock.lock(); }"),
        );
        let d = lo.finish();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, ids::LOCK_ORDER);
        assert!(d[0].message.contains("opposite orders"));
    }

    #[test]
    fn lock_order_consistent_is_clean() {
        let mut lo = LockOrder::default();
        lo.scan(
            "a.rs",
            &lex("fn f() { let g1 = alock.lock(); let g2 = block.lock(); }\nfn g() { let g1 = alock.lock(); let g2 = block.lock(); }"),
        );
        assert!(lo.finish().is_empty());
    }

    #[test]
    fn lock_order_ignores_plain_io_read_write() {
        let mut lo = LockOrder::default();
        lo.scan(
            "a.rs",
            &lex("fn f() { file.read(); sock.write(); }\nfn g() { sock.write(); file.read(); }"),
        );
        assert!(lo.finish().is_empty());
    }

    #[test]
    fn lock_order_rwlock_receivers_participate() {
        let mut lo = LockOrder::default();
        lo.scan(
            "a.rs",
            &lex("fn f() { index_rwlock.read(); pool_mutex.lock(); }"),
        );
        lo.scan(
            "b.rs",
            &lex("fn g() { pool_mutex.lock(); index_rwlock.write(); }"),
        );
        assert_eq!(lo.finish().len(), 1);
    }

    #[test]
    fn cost_constants_flags_undocumented_fields() {
        let spec = "pub struct DeviceSpec { pub hbm_bandwidth: f64, pub warp_size: u32 }";
        let doc = "The `hbm_bandwidth` constant comes from Table 1.";
        let d = cost_constants(
            "spec.rs",
            &lex(spec),
            &["DeviceSpec".to_string()],
            "DESIGN.md",
            doc,
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("warp_size"));
        // Documenting it clears the finding.
        let doc2 = format!("{doc} And `warp_size` is 32.");
        assert!(cost_constants(
            "spec.rs",
            &lex(spec),
            &["DeviceSpec".to_string()],
            "DESIGN.md",
            &doc2
        )
        .is_empty());
    }

    #[test]
    fn condvar_wait_outside_a_loop_is_flagged() {
        // `if`-gated wait: the classic lost-wakeup shape.
        let src = "fn f() { if full { guard = cv.wait(guard); } }";
        let d = condvar_wait_loop("x.rs", &lex(src));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("re-check"));
        // The same wait inside a while re-check is fine, directly or in
        // a nested block.
        let ok = "fn f() { while full { guard = cv.wait(guard); } }";
        assert!(condvar_wait_loop("x.rs", &lex(ok)).is_empty());
        let nested = "fn f() { loop { if closed { return; } g = cv.wait(g); } }";
        assert!(condvar_wait_loop("x.rs", &lex(nested)).is_empty());
    }

    #[test]
    fn condvar_rule_exempts_barrier_and_wait_while() {
        // Barrier::wait takes no argument; wait_while re-checks itself.
        let src = "fn f() { barrier.wait(); g = cv.wait_while(g, |s| s.full); }";
        assert!(condvar_wait_loop("x.rs", &lex(src)).is_empty());
    }

    #[test]
    fn guard_across_hot_call_is_flagged() {
        let hot: Vec<String> = DEFAULT_HOT_CALLS.iter().map(|s| s.to_string()).collect();
        let src = "fn f() { let g = queue_mutex.lock(); engine.run_batch(&b); }";
        let d = lock_across_hot_path("x.rs", &lex(src), &hot);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`g`"));
        // Dropping the guard first, or scoping it, is fine.
        let ok = "fn f() { let g = queue_mutex.lock(); drop(g); engine.run_batch(&b); }";
        assert!(lock_across_hot_path("x.rs", &lex(ok), &hot).is_empty());
        let scoped = "fn f() { { let g = queue_mutex.lock(); } engine.run_batch(&b); }";
        assert!(lock_across_hot_path("x.rs", &lex(scoped), &hot).is_empty());
    }

    #[test]
    fn non_lock_receivers_do_not_create_guards() {
        let hot: Vec<String> = DEFAULT_HOT_CALLS.iter().map(|s| s.to_string()).collect();
        let src = "fn f() { let d = file.read(); engine.run_batch(&b); }";
        assert!(lock_across_hot_path("x.rs", &lex(src), &hot).is_empty());
    }

    #[test]
    fn undeclared_cache_mutation_is_flagged() {
        let mutators = vec!["wipe".to_string(), "end_batch_with".to_string()];
        let markers = vec!["slot_resource".to_string()];
        let src = "fn f(&mut self) { self.cache.wipe(); }";
        let d = slot_resource_coverage("x.rs", &lex(src), "cache", &mutators, &markers);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("cache.wipe"));
        // A marker anywhere in the same fn covers it.
        let ok = "fn f(&mut self, rc: &mut R) { rc.host_write(slot_resource(0, 1)); self.cache.wipe(); }";
        assert!(slot_resource_coverage("x.rs", &lex(ok), "cache", &mutators, &markers).is_empty());
        // Mutators on non-cache receivers are out of scope.
        let other = "fn f(&mut self) { self.journal.wipe(); }";
        assert!(
            slot_resource_coverage("x.rs", &lex(other), "cache", &mutators, &markers).is_empty()
        );
    }

    #[test]
    fn exported_target_feature_fn_is_flagged() {
        let src = "#[target_feature(enable = \"avx2\")]\npub fn dot_avx2(a: &[f32]) -> f32 { 0.0 }";
        let d = target_feature_guard("x.rs", &lex(src));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("dot_avx2"));
        assert!(d[0].message.contains("pub"));
        // Restricted visibility keeps the fn inside this file's module
        // tree, so the dispatcher correlation below still sees every call.
        let ok = "#[target_feature(enable = \"avx2\")]\npub(super) fn dot_avx2(a: &[f32]) -> f32 { 0.0 }";
        assert!(target_feature_guard("x.rs", &lex(ok)).is_empty());
    }

    #[test]
    fn unguarded_target_feature_call_is_flagged() {
        let tf = "#[target_feature(enable = \"avx2\")]\nfn dot_avx2(a: &[f32]) -> f32 { 0.0 }\n";
        // No runtime check anywhere in the calling fn: flagged.
        let bad = format!("{tf}fn dot(a: &[f32]) -> f32 {{ dot_avx2(a) }}");
        let d = target_feature_guard("x.rs", &lex(&bad));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("dot_avx2"));
        assert!(d[0].message.contains("is_x86_feature_detected"));
        // The dispatcher shape: detected -> specialized, else portable.
        let ok = format!(
            "{tf}fn dot(a: &[f32]) -> f32 {{ if std::arch::is_x86_feature_detected!(\"avx2\") {{ return dot_avx2(a); }} 0.0 }}"
        );
        assert!(target_feature_guard("x.rs", &lex(&ok)).is_empty());
        // A target-feature fn calling another needs no re-check: the
        // caller already only runs once the feature is proven.
        let tf_to_tf = format!(
            "{tf}#[target_feature(enable = \"avx2\")]\nfn sum_avx2(a: &[f32]) -> f32 {{ dot_avx2(a) }}"
        );
        assert!(target_feature_guard("x.rs", &lex(&tf_to_tf)).is_empty());
        // Mentioning the name without calling it (e.g. docs) is fine.
        let mention = format!("{tf}fn dot(a: &[f32]) -> f32 {{ let _ = \"dot_avx2\"; 0.0 }}");
        assert!(target_feature_guard("x.rs", &lex(&mention)).is_empty());
    }

    #[test]
    fn cost_constants_ignores_other_structs() {
        let spec = "pub struct Other { pub undocumented: u8 }";
        assert!(cost_constants(
            "spec.rs",
            &lex(spec),
            &["DeviceSpec".to_string()],
            "DESIGN.md",
            ""
        )
        .is_empty());
    }
}
