//! CLI for the workspace lints.
//!
//! ```text
//! fleche-analyzer [--root DIR] [--config FILE]
//! ```
//!
//! Prints `file:line: [rule-id] message` per violation plus a summary
//! line, and exits non-zero when anything is flagged, so CI can gate on
//! it directly.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(v) => root = PathBuf::from(v),
                None => return usage("--root needs a value"),
            },
            "--config" => match args.next() {
                Some(v) => config_path = Some(PathBuf::from(v)),
                None => return usage("--config needs a value"),
            },
            "--help" | "-h" => {
                println!("usage: fleche-analyzer [--root DIR] [--config FILE]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let config_path = config_path.unwrap_or_else(|| root.join("fleche-analyzer.toml"));

    let config = match fleche_analyzer::load_config(&config_path) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("fleche-analyzer: {e}");
            return ExitCode::from(2);
        }
    };
    let diagnostics = match fleche_analyzer::run(&root, &config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("fleche-analyzer: io error: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", fleche_analyzer::render(&diagnostics));
    if diagnostics.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("fleche-analyzer: {msg}");
    eprintln!("usage: fleche-analyzer [--root DIR] [--config FILE]");
    ExitCode::from(2)
}
