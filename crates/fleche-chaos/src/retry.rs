//! Retry policy: backoff, jitter, hedging, deadlines.

use crate::rng::ChaosRng;
use fleche_gpu::Ns;

/// How a caller reacts to failed remote fetches.
///
/// The policy is pure data; the store interprets it. All durations are
/// simulated time.
#[derive(Clone, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_backoff: Ns,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_multiplier: f64,
    /// Uniform ± fraction applied to every backoff so synchronized clients
    /// don't retry in lockstep.
    pub jitter_frac: f64,
    /// When set, a hedged second fetch is fired this long into an attempt
    /// that has not answered yet; whichever answers first wins.
    pub hedge_after: Option<Ns>,
    /// Per-batch time budget across all attempts and backoffs. When the
    /// budget is exhausted the caller stops retrying and falls back
    /// (stale-serve or failure).
    pub deadline: Option<Ns>,
}

impl RetryPolicy {
    /// No recovery at all: one attempt, no hedge, no deadline. The baseline
    /// the chaos suite measures degradation against.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: Ns::ZERO,
            backoff_multiplier: 1.0,
            jitter_frac: 0.0,
            hedge_after: None,
            deadline: None,
        }
    }

    /// A production-shaped default: three attempts, 50 µs starting backoff
    /// doubling each time with ±25 % jitter, a hedged fetch halfway into the
    /// typical remote RTT, and a 5 ms per-batch budget.
    pub fn standard() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Ns::from_us(50.0),
            backoff_multiplier: 2.0,
            jitter_frac: 0.25,
            hedge_after: Some(Ns::from_us(30.0)),
            deadline: Some(Ns::from_ms(5.0)),
        }
    }

    /// True when the policy retries at all.
    pub fn retries_enabled(&self) -> bool {
        self.max_attempts > 1
    }

    /// Jittered backoff to wait before attempt `attempt` (attempts count
    /// from 1; the first attempt has no backoff).
    pub fn backoff_before(&self, attempt: u32, rng: &mut ChaosRng) -> Ns {
        if attempt <= 1 {
            return Ns::ZERO;
        }
        let exp = (attempt - 2) as i32;
        let base = self.base_backoff * self.backoff_multiplier.powi(exp);
        base * rng.jitter(self.jitter_frac)
    }

    /// True when spending `elapsed` so far leaves room under the deadline.
    pub fn within_deadline(&self, elapsed: Ns) -> bool {
        match self.deadline {
            Some(d) => elapsed < d,
            None => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_retries() {
        let p = RetryPolicy::none();
        assert!(!p.retries_enabled());
        assert!(p.within_deadline(Ns::from_secs(100.0)));
        let mut rng = ChaosRng::new(1);
        assert_eq!(p.backoff_before(1, &mut rng), Ns::ZERO);
    }

    #[test]
    fn backoff_grows_exponentially_with_jitter_band() {
        let p = RetryPolicy {
            jitter_frac: 0.25,
            ..RetryPolicy::standard()
        };
        let mut rng = ChaosRng::new(2);
        for attempt in 2..6u32 {
            let nominal = p.base_backoff.as_ns() * 2f64.powi(attempt as i32 - 2);
            for _ in 0..100 {
                let b = p.backoff_before(attempt, &mut rng).as_ns();
                assert!(
                    b >= nominal * 0.75 - 1e-9 && b <= nominal * 1.25 + 1e-9,
                    "attempt {attempt}: backoff {b} outside ±25% of {nominal}"
                );
            }
        }
    }

    #[test]
    fn deadline_cuts_off() {
        let p = RetryPolicy {
            deadline: Some(Ns::from_ms(1.0)),
            ..RetryPolicy::standard()
        };
        assert!(p.within_deadline(Ns::from_us(999.0)));
        assert!(!p.within_deadline(Ns::from_ms(1.0)));
    }
}
