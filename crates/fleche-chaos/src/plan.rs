//! Fault plans and the per-domain injectors they hand out.

use crate::in_periodic_window;
use crate::rng::ChaosRng;
use fleche_gpu::{DeviceFault, LaunchFault, LaunchFaultHook, Ns};

/// Remote parameter-server fault model.
#[derive(Clone, Debug)]
pub struct RemoteFaultSpec {
    /// Probability that one fetch attempt times out (dropped request,
    /// server-side overload). Independent per attempt, so retries help.
    pub fetch_failure_rate: f64,
    /// An outage window opens every this often (`ZERO` = never). During a
    /// window *every* fetch attempt times out, so retries alone don't help —
    /// only stale-serve or the deadline fallback do.
    pub outage_period: Ns,
    /// Length of each outage window.
    pub outage_duration: Ns,
    /// Probability that a successful fetch is slow (degraded RTT).
    pub slow_rate: f64,
    /// RTT multiplier applied to slow fetches.
    pub slow_rtt_factor: f64,
}

impl Default for RemoteFaultSpec {
    fn default() -> RemoteFaultSpec {
        RemoteFaultSpec {
            fetch_failure_rate: 0.0,
            outage_period: Ns::ZERO,
            outage_duration: Ns::ZERO,
            slow_rate: 0.0,
            slow_rtt_factor: 1.0,
        }
    }
}

/// GPU engine fault model.
#[derive(Clone, Debug, Default)]
pub struct GpuFaultSpec {
    /// Probability a kernel launch transiently fails (driver retries).
    pub launch_failure_rate: f64,
    /// Probability a launch's stream stalls before execution.
    pub stall_rate: f64,
    /// Duration of each injected stall.
    pub stall: Ns,
}

/// Slab-pool corruption model.
#[derive(Clone, Debug, Default)]
pub struct CorruptionSpec {
    /// Expected bit flips injected into live pool slots per batch. Values
    /// above 1 flip multiple bits per batch.
    pub bitflips_per_batch: f64,
}

/// Whole-device loss schedule. Unlike the rate-based domains, losses are
/// scheduled at exact batch indices: recovery drills need the kill to
/// land at a reproducible point in the sweep, and batch boundaries are
/// the only points at which a multi-GPU owner re-routes anyway.
#[derive(Clone, Debug, Default)]
pub struct DeviceLossSpec {
    /// Shard index of the victim device.
    pub victim: usize,
    /// Batch index at which the device drops (`None` = never).
    pub lost_at_batch: Option<u64>,
    /// Batch index at which it returns after reset (`None` = stays dead).
    pub restored_at_batch: Option<u64>,
}

/// Process kill-and-warm-restart schedule for single-system drills.
#[derive(Clone, Debug, Default)]
pub struct RestartSpec {
    /// Batch index after which the process is killed and restarted from
    /// its latest checkpoint (`None` = never).
    pub kill_after_batch: Option<u64>,
}

impl RestartSpec {
    /// True when the kill lands right after batch `batch`.
    pub fn kill_due(&self, batch: u64) -> bool {
        self.kill_after_batch == Some(batch)
    }
}

/// Snapshot (checkpoint image) corruption model: bit rot between the
/// write and the restore read-back.
#[derive(Clone, Debug, Default)]
pub struct SnapshotFaultSpec {
    /// Probability that a snapshot image is corrupted — one byte flipped
    /// at a seeded offset — before restore reads it.
    pub corruption_rate: f64,
}

/// Trainer-push channel fault model: what the lossy update stream between
/// the training side and the serving cache can do to pushes in flight.
/// Commits to the parameter-server version ledger are reliable; only the
/// cache-bound push channel rots.
#[derive(Clone, Debug, Default)]
pub struct UpdateFaultSpec {
    /// Probability one push is silently dropped in flight.
    pub drop_rate: f64,
    /// Probability one delivered push is duplicated (at-least-once
    /// delivery showing through).
    pub duplicate_rate: f64,
    /// Probability two adjacent delivered pushes swap order.
    pub reorder_rate: f64,
    /// An update-burst storm lands every this many batches (0 = never):
    /// the trainer emits `burst_factor`× the nominal push volume.
    pub burst_every: u64,
    /// Push-volume multiplier on storm batches.
    pub burst_factor: u64,
    /// An update-stream outage opens every this many batches (0 = never).
    /// During an outage no push reaches the cache at all; ledger commits
    /// keep flowing, so staleness lag climbs.
    pub outage_every: u64,
    /// Length of each outage in batches.
    pub outage_batches: u64,
}

/// Arrival-overload model: periodic bursts during which the offered
/// request rate is multiplied, driving the admission queue and deadline
/// shedding machinery. Unlike the other fault domains this one injects
/// *load*, not failures — the serving front-end must shed deterministically
/// under it, serially and across concurrent workers alike.
#[derive(Clone, Debug, Default)]
pub struct OverloadSpec {
    /// A burst opens every this often in arrival time (`ZERO` = never).
    pub burst_period: Ns,
    /// Length of each burst window.
    pub burst_duration: Ns,
    /// Offered-rate multiplier inside a burst (`> 1` is an overload).
    pub burst_factor: f64,
}

impl OverloadSpec {
    /// Expands the periodic schedule into concrete rate-modulation
    /// windows covering `horizon` of arrival time, in the shape the
    /// workload-side arrival generator consumes.
    pub fn windows(&self, horizon: Ns) -> Vec<fleche_workload::BurstWindow> {
        if self.burst_period <= Ns::ZERO || self.burst_duration <= Ns::ZERO {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut start = self.burst_period;
        while start < horizon {
            out.push(fleche_workload::BurstWindow {
                start_ns: start.as_ns(),
                end_ns: (start + self.burst_duration).as_ns(),
                factor: self.burst_factor,
            });
            start += self.burst_period;
        }
        out
    }
}

/// Flash-crowd injection: one tenant's traffic spikes in *rate* and
/// concentrates in *key space* for a bounded window. The two halves are
/// consumed by different layers — the rate spike by that tenant's arrival
/// generator, the key churn by its trace generator — and both derive from
/// the same window so they land together.
#[derive(Clone, Debug)]
pub struct FlashCrowdSpec {
    /// Tenant index the crowd lands on.
    pub tenant: usize,
    /// Arrival time at which the crowd forms.
    pub start: Ns,
    /// Crowd lifetime.
    pub duration: Ns,
    /// Offered-rate multiplier for the victim tenant inside the window.
    pub rate_factor: f64,
    /// Fraction of the tenant's draws redirected onto the crowd keys.
    pub crowd_fraction: f64,
    /// Number of distinct crowd keys per table.
    pub crowd_size: u64,
    /// Salt for crowd-key placement (see
    /// [`fleche_workload::HotChurnSpec::crowd_id`]).
    pub salt: u64,
}

impl Default for FlashCrowdSpec {
    fn default() -> FlashCrowdSpec {
        FlashCrowdSpec {
            tenant: 0,
            start: Ns::ZERO,
            duration: Ns::ZERO,
            rate_factor: 1.0,
            crowd_fraction: 0.0,
            crowd_size: 1,
            salt: 0,
        }
    }
}

impl FlashCrowdSpec {
    /// Whether the spec injects anything at all.
    pub fn is_active(&self) -> bool {
        self.duration > Ns::ZERO && (self.rate_factor > 1.0 || self.crowd_fraction > 0.0)
    }

    /// The rate-modulation window for the victim tenant's arrival
    /// generator (empty when the spec is quiet).
    pub fn windows(&self) -> Vec<fleche_workload::BurstWindow> {
        if !self.is_active() {
            return Vec::new();
        }
        vec![fleche_workload::BurstWindow {
            start_ns: self.start.as_ns(),
            end_ns: (self.start + self.duration).as_ns(),
            factor: self.rate_factor.max(1.0),
        }]
    }

    /// The key-churn half of the crowd, converted from arrival time to
    /// the victim tenant's sample counts at `offered_load` requests/s.
    /// Inside the window the tenant also produces samples `rate_factor`×
    /// faster, which the duration conversion accounts for.
    pub fn churn(&self, offered_load: f64) -> fleche_workload::HotChurnSpec {
        let start = (self.start.as_secs() * offered_load).round() as u64;
        let duration =
            (self.duration.as_secs() * offered_load * self.rate_factor.max(1.0)).round() as u64;
        fleche_workload::HotChurnSpec {
            start,
            duration,
            crowd_fraction: if self.is_active() {
                self.crowd_fraction
            } else {
                0.0
            },
            crowd_size: self.crowd_size.max(1),
            salt: self.salt,
        }
    }
}

/// A complete, seeded description of the fault environment.
///
/// Each injector draws from an independent substream of `seed`, so turning
/// one fault domain on or off never perturbs the schedule of another — a
/// property the chaos suite's ablation columns rely on.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Master seed; all substreams derive from it.
    pub seed: u64,
    /// Remote parameter-server faults.
    pub remote: RemoteFaultSpec,
    /// GPU engine faults.
    pub gpu: GpuFaultSpec,
    /// Slab-pool corruption.
    pub corruption: CorruptionSpec,
    /// Whole-device loss schedule.
    pub device_loss: DeviceLossSpec,
    /// Process kill/warm-restart schedule.
    pub restart: RestartSpec,
    /// Snapshot-image corruption.
    pub snapshot: SnapshotFaultSpec,
    /// Trainer-push channel faults.
    pub update: UpdateFaultSpec,
    /// Arrival-rate overload bursts.
    pub overload: OverloadSpec,
    /// Single-tenant flash crowd (rate spike + hot-key churn).
    pub flash_crowd: FlashCrowdSpec,
}

const DOMAIN_REMOTE: u64 = 0x01;
const DOMAIN_GPU: u64 = 0x02;
const DOMAIN_CORRUPTION: u64 = 0x03;
const DOMAIN_SNAPSHOT: u64 = 0x04;
const DOMAIN_UPDATE: u64 = 0x05;

impl FaultPlan {
    /// A plan that injects nothing (all rates zero).
    pub fn quiet(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            remote: RemoteFaultSpec::default(),
            gpu: GpuFaultSpec::default(),
            corruption: CorruptionSpec::default(),
            device_loss: DeviceLossSpec::default(),
            restart: RestartSpec::default(),
            snapshot: SnapshotFaultSpec::default(),
            update: UpdateFaultSpec::default(),
            overload: OverloadSpec::default(),
            flash_crowd: FlashCrowdSpec::default(),
        }
    }

    /// The remote-fetch injector for this plan.
    pub fn remote_injector(&self) -> RemoteFaultInjector {
        RemoteFaultInjector {
            spec: self.remote.clone(),
            rng: ChaosRng::substream(self.seed, DOMAIN_REMOTE),
        }
    }

    /// The GPU launch-fault injector for this plan; install it with
    /// [`fleche_gpu::Gpu::set_fault_hook`].
    pub fn gpu_injector(&self) -> GpuFaultInjector {
        GpuFaultInjector {
            spec: self.gpu.clone(),
            rng: ChaosRng::substream(self.seed, DOMAIN_GPU),
        }
    }

    /// The slab-pool corruption injector for this plan.
    pub fn corruption_injector(&self) -> CorruptionInjector {
        CorruptionInjector {
            spec: self.corruption.clone(),
            rng: ChaosRng::substream(self.seed, DOMAIN_CORRUPTION),
        }
    }

    /// The device-loss injector for this plan. Schedule-only (no RNG):
    /// the spec pins exact batch indices.
    pub fn device_loss_injector(&self) -> DeviceLossInjector {
        DeviceLossInjector {
            spec: self.device_loss.clone(),
        }
    }

    /// The snapshot-corruption injector for this plan.
    pub fn snapshot_injector(&self) -> SnapshotFaultInjector {
        SnapshotFaultInjector {
            spec: self.snapshot.clone(),
            rng: ChaosRng::substream(self.seed, DOMAIN_SNAPSHOT),
        }
    }

    /// The trainer-push channel injector for this plan.
    pub fn update_injector(&self) -> UpdateFaultInjector {
        UpdateFaultInjector {
            spec: self.update.clone(),
            rng: ChaosRng::substream(self.seed, DOMAIN_UPDATE),
            dropped: 0,
            duplicated: 0,
            reordered: 0,
        }
    }
}

/// Outcome of one remote fetch attempt.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FetchOutcome {
    /// The fetch succeeds at nominal cost.
    Ok,
    /// The fetch never answers; the caller waits out its timeout.
    TimedOut,
    /// The fetch succeeds with its RTT multiplied by the factor.
    Slow(f64),
}

/// Draws outcomes for remote fetch attempts.
#[derive(Clone, Debug)]
pub struct RemoteFaultInjector {
    spec: RemoteFaultSpec,
    rng: ChaosRng,
}

impl RemoteFaultInjector {
    /// True when `now` falls inside a scheduled outage window.
    pub fn in_outage(&self, now: Ns) -> bool {
        in_periodic_window(now, self.spec.outage_period, self.spec.outage_duration)
    }

    /// The outcome of one fetch attempt issued at `now`.
    pub fn fetch_outcome(&mut self, now: Ns) -> FetchOutcome {
        if self.in_outage(now) {
            return FetchOutcome::TimedOut;
        }
        if self.rng.chance(self.spec.fetch_failure_rate) {
            return FetchOutcome::TimedOut;
        }
        if self.rng.chance(self.spec.slow_rate) {
            return FetchOutcome::Slow(self.spec.slow_rtt_factor);
        }
        FetchOutcome::Ok
    }
}

/// Draws per-launch GPU faults; implements the device facade's hook.
#[derive(Clone, Debug)]
pub struct GpuFaultInjector {
    spec: GpuFaultSpec,
    rng: ChaosRng,
}

impl LaunchFaultHook for GpuFaultInjector {
    fn on_launch(&mut self, _now: Ns, _label: &str) -> LaunchFault {
        if self.rng.chance(self.spec.launch_failure_rate) {
            return LaunchFault::TransientFail;
        }
        if self.rng.chance(self.spec.stall_rate) {
            return LaunchFault::Stall(self.spec.stall);
        }
        LaunchFault::None
    }
}

/// Draws bit-flip targets for the slab pool.
#[derive(Clone, Debug)]
pub struct CorruptionInjector {
    spec: CorruptionSpec,
    rng: ChaosRng,
}

impl CorruptionInjector {
    /// How many bits to flip this batch (integer part of the rate plus a
    /// Bernoulli draw on the fractional part).
    pub fn flips_this_batch(&mut self) -> u32 {
        let rate = self.spec.bitflips_per_batch;
        if rate <= 0.0 {
            return 0;
        }
        let whole = rate.floor() as u32;
        let frac = rate - rate.floor();
        whole + u32::from(self.rng.chance(frac))
    }

    /// Uniform draw from `[0, n)` for choosing a victim slot or word.
    pub fn pick(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        self.rng.below(n)
    }

    /// Which bit of a 32-bit float word to flip. Bits 20–30 cover mantissa
    /// high bits and exponent: flips that change the value materially
    /// without routinely producing NaN payload-only corruption.
    pub fn pick_bit(&mut self) -> u32 {
        20 + (self.rng.below(11) as u32)
    }
}

/// Applies the scheduled device-loss window to a victim shard's `Gpu`.
#[derive(Clone, Debug)]
pub struct DeviceLossInjector {
    spec: DeviceLossSpec,
}

impl DeviceLossInjector {
    /// The shard index of the victim device.
    pub fn victim(&self) -> usize {
        self.spec.victim
    }

    /// Whether the victim should be lost while serving batch `batch`.
    pub fn lost_for_batch(&self, batch: u64) -> bool {
        let Some(lost_at) = self.spec.lost_at_batch else {
            return false;
        };
        if batch < lost_at {
            return false;
        }
        match self.spec.restored_at_batch {
            // A restore scheduled at or before the loss means the device
            // never comes back.
            Some(back) if back > lost_at => batch < back,
            _ => true,
        }
    }

    /// The fault to apply before batch `batch`, given the device's current
    /// state — `None` when no state change is due.
    pub fn transition(&self, currently_lost: bool, batch: u64) -> Option<DeviceFault> {
        let should = self.lost_for_batch(batch);
        match (currently_lost, should) {
            (false, true) => Some(DeviceFault::Lost),
            (true, false) => Some(DeviceFault::Restored),
            _ => None,
        }
    }
}

/// Draws snapshot-image corruption: which byte of a checkpoint flips
/// between write and restore.
#[derive(Clone, Debug)]
pub struct SnapshotFaultInjector {
    spec: SnapshotFaultSpec,
    rng: ChaosRng,
}

impl SnapshotFaultInjector {
    /// For a snapshot of `len` bytes: `Some(offset)` of the byte to flip
    /// when this image rots, `None` when it survives intact. One draw per
    /// snapshot written.
    pub fn corrupt_offset(&mut self, len: u64) -> Option<u64> {
        if len == 0 || !self.rng.chance(self.spec.corruption_rate) {
            return None;
        }
        Some(self.rng.below(len))
    }
}

/// Applies the push-channel fault model to each batch's push traffic.
/// Generic over the push type so the crate stays decoupled from the
/// store-side `UpdatePush` — any cloneable item works.
#[derive(Clone, Debug)]
pub struct UpdateFaultInjector {
    spec: UpdateFaultSpec,
    rng: ChaosRng,
    dropped: u64,
    duplicated: u64,
    reordered: u64,
}

impl UpdateFaultInjector {
    /// True when batch `batch` falls inside a scheduled update-stream
    /// outage (first window opens at batch `outage_every`, matching the
    /// time-domain outage convention).
    pub fn in_outage(&self, batch: u64) -> bool {
        let every = self.spec.outage_every;
        every > 0 && batch >= every && batch % every < self.spec.outage_batches
    }

    /// Push-volume multiplier for batch `batch` (1 off-storm).
    pub fn burst_multiplier(&self, batch: u64) -> u64 {
        let every = self.spec.burst_every;
        if every > 0 && batch >= every && batch % every == 0 {
            self.spec.burst_factor.max(1)
        } else {
            1
        }
    }

    /// Runs one batch's pushes through the channel: drops, duplicates,
    /// then adjacent reorders, all from the plan's seeded substream.
    /// Returns what actually arrives at the cache, in arrival order.
    pub fn filter<T: Clone>(&mut self, pushes: Vec<T>) -> Vec<T> {
        let mut delivered = Vec::with_capacity(pushes.len());
        for p in pushes {
            if self.rng.chance(self.spec.drop_rate) {
                self.dropped += 1;
                continue;
            }
            if self.rng.chance(self.spec.duplicate_rate) {
                self.duplicated += 1;
                delivered.push(p.clone());
            }
            delivered.push(p);
        }
        if delivered.len() >= 2 {
            for i in 0..delivered.len() - 1 {
                if self.rng.chance(self.spec.reorder_rate) {
                    delivered.swap(i, i + 1);
                    self.reordered += 1;
                }
            }
        }
        delivered
    }

    /// Pushes dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Pushes duplicated so far.
    pub fn duplicated(&self) -> u64 {
        self.duplicated
    }

    /// Adjacent swaps applied so far.
    pub fn reordered(&self) -> u64 {
        self.reordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overload_windows_tile_the_horizon() {
        let spec = OverloadSpec {
            burst_period: Ns::from_ms(1.0),
            burst_duration: Ns::from_us(200.0),
            burst_factor: 8.0,
        };
        let w = spec.windows(Ns::from_ms(3.5));
        assert_eq!(w.len(), 3);
        assert_eq!(w[0].start_ns, 1e6);
        assert_eq!(w[0].end_ns, 1.2e6);
        assert_eq!(w[2].start_ns, 3e6);
        assert!(w.iter().all(|b| b.factor == 8.0));
        // Quiet spec ⇒ no windows.
        assert!(OverloadSpec::default()
            .windows(Ns::from_ms(10.0))
            .is_empty());
    }

    #[test]
    fn flash_crowd_halves_share_one_window() {
        let spec = FlashCrowdSpec {
            tenant: 0,
            start: Ns::from_ms(2.0),
            duration: Ns::from_ms(1.0),
            rate_factor: 4.0,
            crowd_fraction: 0.7,
            crowd_size: 8,
            salt: 5,
        };
        assert!(spec.is_active());
        let w = spec.windows();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].start_ns, 2e6);
        assert_eq!(w[0].end_ns, 3e6);
        assert_eq!(w[0].factor, 4.0);
        // At 1M req/s: crowd starts at sample 2000, and the 1 ms window
        // holds 4000 samples at the boosted rate.
        let churn = spec.churn(1_000_000.0);
        assert_eq!(churn.start, 2_000);
        assert_eq!(churn.duration, 4_000);
        assert_eq!(churn.crowd_fraction, 0.7);
        // Quiet spec injects nothing anywhere.
        let quiet = FlashCrowdSpec::default();
        assert!(!quiet.is_active());
        assert!(quiet.windows().is_empty());
        assert_eq!(quiet.churn(1_000_000.0).crowd_fraction, 0.0);
    }

    #[test]
    fn plans_replay_identically() {
        let plan = FaultPlan {
            remote: RemoteFaultSpec {
                fetch_failure_rate: 0.3,
                slow_rate: 0.2,
                slow_rtt_factor: 4.0,
                ..RemoteFaultSpec::default()
            },
            gpu: GpuFaultSpec {
                launch_failure_rate: 0.1,
                stall_rate: 0.05,
                stall: Ns::from_us(20.0),
            },
            corruption: CorruptionSpec {
                bitflips_per_batch: 0.5,
            },
            snapshot: SnapshotFaultSpec {
                corruption_rate: 0.5,
            },
            update: UpdateFaultSpec {
                drop_rate: 0.2,
                duplicate_rate: 0.1,
                reorder_rate: 0.1,
                burst_every: 16,
                burst_factor: 4,
                outage_every: 32,
                outage_batches: 4,
            },
            ..FaultPlan::quiet(77)
        };
        let mut a = plan.remote_injector();
        let mut b = plan.remote_injector();
        for i in 0..256 {
            let t = Ns::from_us(i as f64);
            assert_eq!(a.fetch_outcome(t), b.fetch_outcome(t));
        }
        let mut ga = plan.gpu_injector();
        let mut gb = plan.gpu_injector();
        for _ in 0..256 {
            assert_eq!(ga.on_launch(Ns::ZERO, "k"), gb.on_launch(Ns::ZERO, "k"));
        }
        let mut ca = plan.corruption_injector();
        let mut cb = plan.corruption_injector();
        for _ in 0..64 {
            assert_eq!(ca.flips_this_batch(), cb.flips_this_batch());
            assert_eq!(ca.pick(1000), cb.pick(1000));
            assert_eq!(ca.pick_bit(), cb.pick_bit());
        }
        let mut sa = plan.snapshot_injector();
        let mut sb = plan.snapshot_injector();
        for _ in 0..64 {
            assert_eq!(sa.corrupt_offset(4096), sb.corrupt_offset(4096));
        }
        let mut ua = plan.update_injector();
        let mut ub = plan.update_injector();
        for batch in 0..64u64 {
            let pushes: Vec<u64> = (0..8).map(|i| batch * 8 + i).collect();
            assert_eq!(ua.filter(pushes.clone()), ub.filter(pushes));
            assert_eq!(ua.in_outage(batch), ub.in_outage(batch));
            assert_eq!(ua.burst_multiplier(batch), ub.burst_multiplier(batch));
        }
        assert_eq!(ua.dropped(), ub.dropped());
        assert_eq!(ua.duplicated(), ub.duplicated());
        assert_eq!(ua.reordered(), ub.reordered());
    }

    #[test]
    fn update_channel_faults_behave_as_specified() {
        let plan = FaultPlan {
            update: UpdateFaultSpec {
                drop_rate: 0.25,
                duplicate_rate: 0.1,
                reorder_rate: 0.0,
                burst_every: 10,
                burst_factor: 8,
                outage_every: 20,
                outage_batches: 3,
            },
            ..FaultPlan::quiet(21)
        };
        let mut inj = plan.update_injector();
        // Outage windows: first at batch 20, none before.
        assert!(!inj.in_outage(0));
        assert!(!inj.in_outage(19));
        assert!(inj.in_outage(20));
        assert!(inj.in_outage(22));
        assert!(!inj.in_outage(23));
        assert!(inj.in_outage(40));
        // Burst storms: batches 10, 20, 30...
        assert_eq!(inj.burst_multiplier(0), 1);
        assert_eq!(inj.burst_multiplier(9), 1);
        assert_eq!(inj.burst_multiplier(10), 8);
        assert_eq!(inj.burst_multiplier(15), 1);
        // Drop/duplicate rates hold over volume.
        let mut delivered = 0usize;
        for _ in 0..1_000 {
            delivered += inj.filter(vec![0u8; 10]).len();
        }
        // E[delivered per push] = (1 - 0.25) * (1 + 0.1) = 0.825.
        assert!(
            (7_900..8_600).contains(&delivered),
            "delivered {delivered} far from expected ~8250"
        );
        assert!(inj.dropped() > 2_000);
        assert!(inj.duplicated() > 500);
        assert_eq!(inj.reordered(), 0, "reorder rate zero");
    }

    #[test]
    fn reorder_swaps_adjacent_pushes() {
        let plan = FaultPlan {
            update: UpdateFaultSpec {
                reorder_rate: 1.0,
                ..UpdateFaultSpec::default()
            },
            ..FaultPlan::quiet(4)
        };
        let mut inj = plan.update_injector();
        // Every adjacent pair swaps in sequence: [1,2,3] → [2,3,1].
        assert_eq!(inj.filter(vec![1, 2, 3]), vec![2, 3, 1]);
        assert_eq!(inj.reordered(), 2);
        // Nothing is ever lost or invented by reordering.
        let mut out = inj.filter((0..100u64).collect());
        out.sort_unstable();
        assert_eq!(out, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn device_loss_window_is_a_pure_schedule() {
        let plan = FaultPlan {
            device_loss: DeviceLossSpec {
                victim: 2,
                lost_at_batch: Some(40),
                restored_at_batch: Some(60),
            },
            ..FaultPlan::quiet(3)
        };
        let inj = plan.device_loss_injector();
        assert_eq!(inj.victim(), 2);
        assert!(!inj.lost_for_batch(39));
        assert!(inj.lost_for_batch(40));
        assert!(inj.lost_for_batch(59));
        assert!(!inj.lost_for_batch(60));
        assert_eq!(
            inj.transition(false, 40),
            Some(fleche_gpu::DeviceFault::Lost)
        );
        assert_eq!(inj.transition(true, 45), None);
        assert_eq!(
            inj.transition(true, 60),
            Some(fleche_gpu::DeviceFault::Restored)
        );
        assert_eq!(inj.transition(false, 61), None);

        // No restore scheduled: dead stays dead.
        let forever = FaultPlan {
            device_loss: DeviceLossSpec {
                victim: 0,
                lost_at_batch: Some(5),
                restored_at_batch: None,
            },
            ..FaultPlan::quiet(3)
        };
        assert!(forever.device_loss_injector().lost_for_batch(1_000_000));
    }

    #[test]
    fn snapshot_corruption_offsets_stay_in_bounds() {
        let plan = FaultPlan {
            snapshot: SnapshotFaultSpec {
                corruption_rate: 1.0,
            },
            ..FaultPlan::quiet(9)
        };
        let mut inj = plan.snapshot_injector();
        for _ in 0..256 {
            let off = inj.corrupt_offset(100).expect("rate 1.0 always corrupts");
            assert!(off < 100);
        }
        assert_eq!(inj.corrupt_offset(0), None, "empty images cannot rot");
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let plan = FaultPlan::quiet(1);
        let mut remote = plan.remote_injector();
        let mut gpu = plan.gpu_injector();
        let mut corr = plan.corruption_injector();
        let mut snap = plan.snapshot_injector();
        let loss = plan.device_loss_injector();
        for i in 0..128 {
            let t = Ns::from_ms(i as f64);
            assert_eq!(remote.fetch_outcome(t), FetchOutcome::Ok);
            assert_eq!(gpu.on_launch(t, "k"), LaunchFault::None);
            assert_eq!(corr.flips_this_batch(), 0);
            assert_eq!(snap.corrupt_offset(1024), None);
            assert!(!loss.lost_for_batch(i));
            assert!(!plan.restart.kill_due(i));
        }
    }

    #[test]
    fn outage_windows_time_out_every_attempt() {
        let plan = FaultPlan {
            remote: RemoteFaultSpec {
                outage_period: Ns::from_ms(10.0),
                outage_duration: Ns::from_ms(1.0),
                ..RemoteFaultSpec::default()
            },
            ..FaultPlan::quiet(5)
        };
        let mut inj = plan.remote_injector();
        assert!(!inj.in_outage(Ns::from_ms(5.0)));
        assert!(inj.in_outage(Ns::from_ms(10.2)));
        for _ in 0..32 {
            assert_eq!(inj.fetch_outcome(Ns::from_ms(10.5)), FetchOutcome::TimedOut);
        }
        assert_eq!(inj.fetch_outcome(Ns::from_ms(12.0)), FetchOutcome::Ok);
    }

    #[test]
    fn fetch_failure_rate_is_respected() {
        let plan = FaultPlan {
            remote: RemoteFaultSpec {
                fetch_failure_rate: 0.25,
                ..RemoteFaultSpec::default()
            },
            ..FaultPlan::quiet(11)
        };
        let mut inj = plan.remote_injector();
        let timeouts = (0..10_000)
            .filter(|_| inj.fetch_outcome(Ns::ZERO) == FetchOutcome::TimedOut)
            .count();
        assert!(
            (2_100..2_900).contains(&timeouts),
            "timeouts {timeouts} far from 25%"
        );
    }

    #[test]
    fn corruption_rate_above_one_flips_multiple() {
        let plan = FaultPlan {
            corruption: CorruptionSpec {
                bitflips_per_batch: 2.5,
            },
            ..FaultPlan::quiet(13)
        };
        let mut inj = plan.corruption_injector();
        let total: u32 = (0..1_000).map(|_| inj.flips_this_batch()).sum();
        assert!(
            (2_300..2_700).contains(&total),
            "expected ~2500 flips, got {total}"
        );
        for _ in 0..100 {
            let bit = inj.pick_bit();
            assert!((20..31).contains(&bit));
        }
    }
}
