//! Circuit breaker over the GPU-cache fast path.
//!
//! When the GPU cache starts failing (transient launch faults, checksum
//! corruption), continuing to push every batch through it wastes retries and
//! risks serving bad bytes. The breaker watches a rolling window of
//! batch outcomes; past a failure-rate threshold it *opens* and the system
//! degrades to the DRAM-only path (correct, slower). After a cooldown it
//! *half-opens*, letting a limited number of probe batches through the cache
//! again: if they succeed the breaker closes, if any fails it re-opens.

use fleche_gpu::Ns;

/// Breaker tuning knobs.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Failure-rate threshold over the sample window that trips the breaker.
    pub failure_threshold: f64,
    /// Outcomes to accumulate before the threshold is consulted.
    pub min_samples: u32,
    /// Size of the rolling outcome window.
    pub window: u32,
    /// How long the breaker stays open before probing.
    pub cooldown: Ns,
    /// Consecutive successful probes required to close from half-open.
    pub probes_to_close: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 0.5,
            min_samples: 8,
            window: 32,
            cooldown: Ns::from_ms(2.0),
            probes_to_close: 3,
        }
    }
}

/// Where the breaker currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows through the protected path.
    Closed,
    /// Protected path bypassed; waiting out the cooldown.
    Open,
    /// Probing the protected path with limited traffic.
    HalfOpen,
}

/// The breaker state machine. Time is simulated [`Ns`] supplied by the
/// caller, so behaviour replays deterministically.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Rolling window of recent outcomes (true = failure), newest last.
    window: Vec<bool>,
    opened_at: Ns,
    probe_successes: u32,
    trips: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            window: Vec::new(),
            opened_at: Ns::ZERO,
            probe_successes: 0,
            trips: 0,
        }
    }

    /// Current state, transitioning open → half-open if the cooldown has
    /// elapsed by `now`.
    pub fn state_at(&mut self, now: Ns) -> BreakerState {
        if self.state == BreakerState::Open
            && now.saturating_sub(self.opened_at) >= self.config.cooldown
        {
            self.state = BreakerState::HalfOpen;
            self.probe_successes = 0;
        }
        self.state
    }

    /// Should this batch use the protected (GPU-cache) path at `now`?
    pub fn allow(&mut self, now: Ns) -> bool {
        match self.state_at(now) {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => false,
        }
    }

    /// Records the outcome of a batch that went through the protected path.
    pub fn record(&mut self, now: Ns, failed: bool) {
        match self.state_at(now) {
            BreakerState::Closed => {
                self.window.push(failed);
                let excess = self
                    .window
                    .len()
                    .saturating_sub(self.config.window as usize);
                if excess > 0 {
                    self.window.drain(..excess);
                }
                if self.window.len() >= self.config.min_samples as usize {
                    let failures = self.window.iter().filter(|&&f| f).count();
                    let rate = failures as f64 / self.window.len() as f64;
                    if rate >= self.config.failure_threshold {
                        self.trip(now);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if failed {
                    self.trip(now);
                } else {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.config.probes_to_close {
                        self.state = BreakerState::Closed;
                        self.window.clear();
                    }
                }
            }
            BreakerState::Open => {
                // Outcome from a request admitted before the trip; ignore.
            }
        }
    }

    fn trip(&mut self, now: Ns) {
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.window.clear();
        self.probe_successes = 0;
        self.trips += 1;
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.trips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 0.5,
            min_samples: 4,
            window: 8,
            cooldown: Ns::from_ms(1.0),
            probes_to_close: 2,
        })
    }

    #[test]
    fn trips_past_threshold_and_blocks() {
        let mut b = quick();
        let t = Ns::ZERO;
        for _ in 0..2 {
            b.record(t, false);
        }
        assert_eq!(b.state_at(t), BreakerState::Closed);
        for _ in 0..4 {
            b.record(t, true);
        }
        assert_eq!(b.state_at(t), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allow(t + Ns::from_us(10.0)));
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let mut b = quick();
        for _ in 0..4 {
            b.record(Ns::ZERO, true);
        }
        let after = Ns::from_ms(1.5);
        assert!(b.allow(after), "cooldown elapsed, probes admitted");
        assert_eq!(b.state_at(after), BreakerState::HalfOpen);
        b.record(after, false);
        assert_eq!(b.state_at(after), BreakerState::HalfOpen);
        b.record(after, false);
        assert_eq!(b.state_at(after), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = quick();
        for _ in 0..4 {
            b.record(Ns::ZERO, true);
        }
        let after = Ns::from_ms(1.5);
        assert!(b.allow(after));
        b.record(after, true);
        assert_eq!(b.state_at(after), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // A fresh cooldown applies from the re-trip.
        assert!(!b.allow(after + Ns::from_us(500.0)));
        assert!(b.allow(after + Ns::from_ms(1.1)));
    }

    #[test]
    fn closing_clears_history() {
        let mut b = quick();
        for _ in 0..4 {
            b.record(Ns::ZERO, true);
        }
        let after = Ns::from_ms(1.5);
        b.allow(after);
        b.record(after, false);
        b.record(after, false);
        // Back to closed: a single new failure must not trip immediately.
        b.record(after, true);
        assert_eq!(b.state_at(after), BreakerState::Closed);
    }
}
