//! Circuit breaker over the GPU-cache fast path.
//!
//! When the GPU cache starts failing (transient launch faults, checksum
//! corruption), continuing to push every batch through it wastes retries and
//! risks serving bad bytes. The breaker watches a rolling window of
//! batch outcomes; past a failure-rate threshold it *opens* and the system
//! degrades to the DRAM-only path (correct, slower). After a cooldown it
//! *half-opens*, letting a limited number of probe batches through the cache
//! again: if they succeed the breaker closes, if any fails it re-opens.

use fleche_gpu::Ns;

/// Breaker tuning knobs.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Failure-rate threshold over the sample window that trips the breaker.
    pub failure_threshold: f64,
    /// Outcomes to accumulate before the threshold is consulted.
    pub min_samples: u32,
    /// Size of the rolling outcome window.
    pub window: u32,
    /// How long the breaker stays open before probing.
    pub cooldown: Ns,
    /// Consecutive successful probes required to close from half-open.
    pub probes_to_close: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 0.5,
            min_samples: 8,
            window: 32,
            cooldown: Ns::from_ms(2.0),
            probes_to_close: 3,
        }
    }
}

/// Where the breaker currently is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows through the protected path.
    Closed,
    /// Protected path bypassed; waiting out the cooldown.
    Open,
    /// Probing the protected path with limited traffic.
    HalfOpen,
}

/// Counts of every transition a breaker has made, plus accumulated time
/// in the non-closed states. Drills surface these so a reader sees *why*
/// a run degraded (tripped N times, probed M times, spent T open), not
/// just that it did.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BreakerTransitions {
    /// Closed/half-open → open trips.
    pub opened: u64,
    /// Open → half-open cooldown expiries (probe windows started).
    pub half_opened: u64,
    /// Half-open → closed recoveries (probe windows that succeeded).
    pub closed: u64,
    /// Total simulated time spent open (protected path bypassed).
    pub time_open: Ns,
    /// Total simulated time spent half-open (probing).
    pub time_half_open: Ns,
}

/// The breaker state machine. Time is simulated [`Ns`] supplied by the
/// caller, so behaviour replays deterministically.
#[derive(Clone, Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Rolling window of recent outcomes (true = failure), newest last.
    window: Vec<bool>,
    opened_at: Ns,
    probe_successes: u32,
    transitions: BreakerTransitions,
    /// When the current state was entered (for time-in-state accounting).
    state_since: Ns,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: BreakerState::Closed,
            window: Vec::new(),
            opened_at: Ns::ZERO,
            probe_successes: 0,
            transitions: BreakerTransitions::default(),
            state_since: Ns::ZERO,
        }
    }

    /// Current state, transitioning open → half-open if the cooldown has
    /// elapsed by `now`.
    pub fn state_at(&mut self, now: Ns) -> BreakerState {
        if self.state == BreakerState::Open
            && now.saturating_sub(self.opened_at) >= self.config.cooldown
        {
            self.state = BreakerState::HalfOpen;
            self.probe_successes = 0;
            self.transitions.half_opened += 1;
            self.transitions.time_open += now.saturating_sub(self.state_since);
            self.state_since = now;
        }
        self.state
    }

    /// Should this batch use the protected (GPU-cache) path at `now`?
    pub fn allow(&mut self, now: Ns) -> bool {
        match self.state_at(now) {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => false,
        }
    }

    /// Records the outcome of a batch that went through the protected path.
    pub fn record(&mut self, now: Ns, failed: bool) {
        match self.state_at(now) {
            BreakerState::Closed => {
                self.window.push(failed);
                let excess = self
                    .window
                    .len()
                    .saturating_sub(self.config.window as usize);
                if excess > 0 {
                    self.window.drain(..excess);
                }
                if self.window.len() >= self.config.min_samples as usize {
                    let failures = self.window.iter().filter(|&&f| f).count();
                    let rate = failures as f64 / self.window.len() as f64;
                    if rate >= self.config.failure_threshold {
                        self.trip(now);
                    }
                }
            }
            BreakerState::HalfOpen => {
                if failed {
                    self.trip(now);
                } else {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.config.probes_to_close {
                        self.state = BreakerState::Closed;
                        self.window.clear();
                        self.transitions.closed += 1;
                        self.transitions.time_half_open += now.saturating_sub(self.state_since);
                        self.state_since = now;
                    }
                }
            }
            BreakerState::Open => {
                // Outcome from a request admitted before the trip; ignore.
            }
        }
    }

    fn trip(&mut self, now: Ns) {
        if self.state == BreakerState::HalfOpen {
            self.transitions.time_half_open += now.saturating_sub(self.state_since);
        }
        self.state = BreakerState::Open;
        self.opened_at = now;
        self.window.clear();
        self.probe_successes = 0;
        self.transitions.opened += 1;
        self.state_since = now;
    }

    /// How many times the breaker has tripped open.
    pub fn trips(&self) -> u64 {
        self.transitions.opened
    }

    /// Transition counts and time-in-state totals up to `now`. Passing the
    /// caller's current clock closes out the in-progress open/half-open
    /// span, so a breaker still open at report time is fully accounted.
    pub fn transitions_at(&self, now: Ns) -> BreakerTransitions {
        let mut t = self.transitions;
        let tail = now.saturating_sub(self.state_since);
        match self.state {
            BreakerState::Open => t.time_open += tail,
            BreakerState::HalfOpen => t.time_half_open += tail,
            BreakerState::Closed => {}
        }
        t
    }
}

/// Bounded-staleness policy knobs for the online-update pipeline.
///
/// Lag is measured in *versions*: the parameter server's committed version
/// of a key minus the version of the bytes the cache would serve for it.
#[derive(Clone, Copy, Debug)]
pub struct StalenessConfig {
    /// Largest per-hit version lag the system may serve silently. A batch
    /// whose worst hit exceeds this enters staleness-degraded mode, and
    /// while degraded, any hit over the bound is demoted to a miss (served
    /// fresh from the parameter server) and refreshed at the batch
    /// boundary.
    pub max_lag: u64,
    /// Worst batch lag at or below which a degraded system resumes normal
    /// serving. Kept below `max_lag` for hysteresis, so the mode does not
    /// flap at the bound.
    pub resume_lag: u64,
}

impl Default for StalenessConfig {
    fn default() -> StalenessConfig {
        StalenessConfig {
            max_lag: 8,
            resume_lag: 2,
        }
    }
}

/// The staleness-degraded mode state machine — a lag-domain breaker.
///
/// Unlike [`CircuitBreaker`], which bypasses a faulty path, this policy
/// never stops serving: degraded mode only changes *how* over-bound hits
/// are served (refetched fresh instead of served stale). It observes each
/// batch's worst version lag and declares mode transitions with
/// hysteresis.
#[derive(Clone, Debug, Default)]
pub struct StalenessPolicy {
    config: StalenessConfig,
    degraded: bool,
    entries: u64,
    exits: u64,
    worst_lag: u64,
}

impl StalenessPolicy {
    /// A policy in normal mode.
    pub fn new(config: StalenessConfig) -> StalenessPolicy {
        StalenessPolicy {
            config,
            ..StalenessPolicy::default()
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> StalenessConfig {
        self.config
    }

    /// Feeds one batch's worst observed hit lag; returns whether the
    /// system is in staleness-degraded mode *after* this observation.
    pub fn observe(&mut self, batch_max_lag: u64) -> bool {
        self.worst_lag = self.worst_lag.max(batch_max_lag);
        if self.degraded {
            if batch_max_lag <= self.config.resume_lag {
                self.degraded = false;
                self.exits += 1;
            }
        } else if batch_max_lag > self.config.max_lag {
            self.degraded = true;
            self.entries += 1;
        }
        self.degraded
    }

    /// Whether the system is currently in staleness-degraded mode.
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Times the policy entered degraded mode.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Times the policy exited degraded mode (caught up).
    pub fn exits(&self) -> u64 {
        self.exits
    }

    /// Worst batch lag ever observed.
    pub fn worst_lag(&self) -> u64 {
        self.worst_lag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            failure_threshold: 0.5,
            min_samples: 4,
            window: 8,
            cooldown: Ns::from_ms(1.0),
            probes_to_close: 2,
        })
    }

    #[test]
    fn trips_past_threshold_and_blocks() {
        let mut b = quick();
        let t = Ns::ZERO;
        for _ in 0..2 {
            b.record(t, false);
        }
        assert_eq!(b.state_at(t), BreakerState::Closed);
        for _ in 0..4 {
            b.record(t, true);
        }
        assert_eq!(b.state_at(t), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.allow(t + Ns::from_us(10.0)));
    }

    #[test]
    fn half_open_probe_closes_on_success() {
        let mut b = quick();
        for _ in 0..4 {
            b.record(Ns::ZERO, true);
        }
        let after = Ns::from_ms(1.5);
        assert!(b.allow(after), "cooldown elapsed, probes admitted");
        assert_eq!(b.state_at(after), BreakerState::HalfOpen);
        b.record(after, false);
        assert_eq!(b.state_at(after), BreakerState::HalfOpen);
        b.record(after, false);
        assert_eq!(b.state_at(after), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let mut b = quick();
        for _ in 0..4 {
            b.record(Ns::ZERO, true);
        }
        let after = Ns::from_ms(1.5);
        assert!(b.allow(after));
        b.record(after, true);
        assert_eq!(b.state_at(after), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // A fresh cooldown applies from the re-trip.
        assert!(!b.allow(after + Ns::from_us(500.0)));
        assert!(b.allow(after + Ns::from_ms(1.1)));
    }

    #[test]
    fn transitions_and_time_in_state_are_accounted() {
        let mut b = quick();
        for _ in 0..4 {
            b.record(Ns::ZERO, true); // trips at t=0
        }
        let probe = Ns::from_ms(1.5); // cooldown (1ms) elapsed
        assert!(b.allow(probe));
        b.record(probe, false);
        let close = Ns::from_ms(1.8);
        b.record(close, false); // second probe closes
        let t = b.transitions_at(close);
        assert_eq!((t.opened, t.half_opened, t.closed), (1, 1, 1));
        assert_eq!(t.time_open, Ns::from_ms(1.5));
        assert!((t.time_half_open - Ns::from_ms(0.3)).as_ns().abs() < 1e-6);
        // A breaker still open at report time is accounted up to `now`.
        for _ in 0..4 {
            b.record(close, true);
        }
        let later = close + Ns::from_us(400.0);
        let t2 = b.transitions_at(later);
        assert_eq!(t2.opened, 2);
        assert_eq!(t2.time_open, Ns::from_ms(1.5) + Ns::from_us(400.0));
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn staleness_policy_has_hysteresis() {
        let mut p = StalenessPolicy::new(StalenessConfig {
            max_lag: 4,
            resume_lag: 1,
        });
        assert!(!p.observe(4), "at the bound is still normal");
        assert!(p.observe(5), "over the bound degrades");
        assert!(p.observe(3), "between resume and max stays degraded");
        assert!(p.observe(2), "hysteresis holds");
        assert!(!p.observe(1), "at resume lag recovers");
        assert_eq!(p.entries(), 1);
        assert_eq!(p.exits(), 1);
        assert_eq!(p.worst_lag(), 5);
        assert!(!p.degraded());
    }

    #[test]
    fn closing_clears_history() {
        let mut b = quick();
        for _ in 0..4 {
            b.record(Ns::ZERO, true);
        }
        let after = Ns::from_ms(1.5);
        b.allow(after);
        b.record(after, false);
        b.record(after, false);
        // Back to closed: a single new failure must not trip immediately.
        b.record(after, true);
        assert_eq!(b.state_at(after), BreakerState::Closed);
    }
}
