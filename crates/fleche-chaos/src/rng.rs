//! Seeded random stream for fault decisions.

/// A splitmix64 stream. Small, fast, and — unlike the workspace's `StdRng`
/// stand-in — guaranteed stable across this crate's lifetime, because chaos
/// experiment tables in EXPERIMENTS.md are regenerated and diffed.
#[derive(Clone, Debug)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A stream determined entirely by `seed`.
    pub fn new(seed: u64) -> ChaosRng {
        ChaosRng {
            // Avoid the all-zero fixed point and decorrelate small seeds.
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Derives an independent substream; used to give each fault domain its
    /// own stream so adding draws in one domain never perturbs another.
    pub fn substream(seed: u64, domain: u64) -> ChaosRng {
        ChaosRng::new(seed.wrapping_mul(0xA24B_AED4_963E_E407) ^ domain)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// True with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            // Never consume a draw for impossible events: a zero-rate domain
            // must leave the stream untouched so enabling it elsewhere
            // reproduces identically.
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit_f64() < p
    }

    /// Uniform draw from `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// A multiplicative jitter factor uniform in `[1 - frac, 1 + frac]`.
    pub fn jitter(&mut self, frac: f64) -> f64 {
        if frac <= 0.0 {
            return 1.0;
        }
        1.0 + (self.unit_f64() * 2.0 - 1.0) * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaosRng::new(7);
        let mut b = ChaosRng::new(7);
        let mut c = ChaosRng::new(8);
        let mut diverged = false;
        for _ in 0..32 {
            let x = a.next_u64();
            assert_eq!(x, b.next_u64());
            if x != c.next_u64() {
                diverged = true;
            }
        }
        assert!(diverged);
    }

    #[test]
    fn substreams_are_independent() {
        let mut a = ChaosRng::substream(42, 1);
        let mut b = ChaosRng::substream(42, 2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chance_matches_rate() {
        let mut rng = ChaosRng::new(3);
        let hits = (0..10_000).filter(|_| rng.chance(0.2)).count();
        assert!((1_700..2_300).contains(&hits), "hits {hits}");
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn zero_rate_consumes_no_draws() {
        let mut a = ChaosRng::new(9);
        let mut b = ChaosRng::new(9);
        let _ = a.chance(0.0);
        let _ = a.chance(1.0);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = ChaosRng::new(5);
        for _ in 0..1_000 {
            let j = rng.jitter(0.25);
            assert!((0.75..=1.25).contains(&j), "jitter {j}");
        }
        assert_eq!(rng.jitter(0.0), 1.0);
    }
}
