//! # fleche-chaos
//!
//! Deterministic fault injection and degradation policies for the Fleche
//! serving stack. Everything here runs in *simulated* time ([`Ns`]) and draws
//! from seeded streams, so a chaos experiment replays bit-identically for a
//! fixed seed — robustness becomes a regression-checkable property exactly
//! like a latency figure.
//!
//! The crate has two halves:
//!
//! * **Injection** — a [`FaultPlan`] describes the fault environment (remote
//!   parameter-server outages and per-fetch failures, transient GPU launch
//!   faults and stream stalls, slab-pool bit flips, whole-device losses,
//!   process restarts, snapshot-image rot) and hands out per-domain
//!   injectors seeded from independent substreams.
//! * **Recovery policy** — [`RetryPolicy`] (exponential backoff + jitter,
//!   hedged second fetch, per-batch deadline) and [`CircuitBreaker`]
//!   (closed → open → half-open probing) are plain data + state machines the
//!   store and cache layers consult; they own no I/O themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fleche_gpu::Ns;

pub mod breaker;
pub mod plan;
pub mod retry;
pub mod rng;

pub use breaker::{
    BreakerConfig, BreakerState, BreakerTransitions, CircuitBreaker, StalenessConfig,
    StalenessPolicy,
};
pub use plan::{
    CorruptionInjector, CorruptionSpec, DeviceLossInjector, DeviceLossSpec, FaultPlan,
    FetchOutcome, FlashCrowdSpec, GpuFaultInjector, GpuFaultSpec, OverloadSpec,
    RemoteFaultInjector, RemoteFaultSpec, RestartSpec, SnapshotFaultInjector, SnapshotFaultSpec,
    UpdateFaultInjector, UpdateFaultSpec,
};
pub use retry::RetryPolicy;
pub use rng::ChaosRng;

/// Convenience: true when `now` falls inside a periodic window of
/// `duration` that opens every `period` (first window starts at `period`,
/// so a simulation's warmup at t=0 is outage-free).
pub(crate) fn in_periodic_window(now: Ns, period: Ns, duration: Ns) -> bool {
    if period.as_ns() <= 0.0 || duration.as_ns() <= 0.0 {
        return false;
    }
    let t = now.as_ns();
    let p = period.as_ns();
    if t < p {
        return false;
    }
    let phase = t % p;
    phase < duration.as_ns()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_window_math() {
        let period = Ns::from_ms(10.0);
        let dur = Ns::from_ms(2.0);
        assert!(!in_periodic_window(Ns::ZERO, period, dur));
        assert!(!in_periodic_window(Ns::from_ms(5.0), period, dur));
        assert!(in_periodic_window(Ns::from_ms(10.5), period, dur));
        assert!(in_periodic_window(Ns::from_ms(11.9), period, dur));
        assert!(!in_periodic_window(Ns::from_ms(12.1), period, dur));
        assert!(in_periodic_window(Ns::from_ms(20.1), period, dur));
        // Degenerate specs never fire.
        assert!(!in_periodic_window(Ns::from_ms(10.5), Ns::ZERO, dur));
        assert!(!in_periodic_window(Ns::from_ms(10.5), period, Ns::ZERO));
    }
}
