//! Property tests over the full query workflow: for random dataset shapes,
//! cache sizes, feature toggles, and batch sizes, every Fleche variant
//! must serve byte-exact rows, keep its counters consistent, and advance
//! simulated time monotonically.

use fleche_core::{FlatCacheConfig, FlecheConfig, FlecheSystem};
use fleche_gpu::{DeviceSpec, DramSpec, Gpu};
use fleche_store::api::EmbeddingCacheSystem;
use fleche_store::CpuStore;
use fleche_workload::{spec, TraceGenerator};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Scenario {
    n_tables: usize,
    corpus: u64,
    dim: u32,
    cache_fraction: f64,
    fusion: bool,
    decoupling: bool,
    unified_index: bool,
    admission: f64,
    batch: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        1usize..10,
        50u64..3_000,
        prop::sample::select(vec![4u32, 8, 16, 32]),
        0.01f64..0.4,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0.1f64..1.0,
        1usize..96,
    )
        .prop_map(
            |(
                n_tables,
                corpus,
                dim,
                cache_fraction,
                fusion,
                decoupling,
                unified_index,
                admission,
                batch,
            )| {
                Scenario {
                    n_tables,
                    corpus,
                    dim,
                    cache_fraction,
                    fusion,
                    decoupling,
                    unified_index,
                    admission,
                    batch,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_configuration_serves_exact_rows(sc in scenario()) {
        let ds = spec::synthetic(sc.n_tables, sc.corpus, sc.dim, -1.2);
        let truth = CpuStore::new(&ds, DramSpec::xeon_6252());
        let store = CpuStore::new(&ds, DramSpec::xeon_6252());
        let mut sys = FlecheSystem::new(
            &ds,
            store,
            FlecheConfig {
                cache_fraction: sc.cache_fraction,
                fusion: sc.fusion,
                decoupling: sc.decoupling,
                unified_index: sc.unified_index,
                cache: FlatCacheConfig {
                    admission_probability: sc.admission,
                    ..FlatCacheConfig::default()
                },
                ..FlecheConfig::full(sc.cache_fraction)
            },
        );
        let mut gpu = Gpu::new(DeviceSpec::t4());
        let mut gen = TraceGenerator::new(&ds);
        let mut last = gpu.now();
        for _ in 0..3 {
            let batch = gen.next_batch(sc.batch);
            let out = sys.query_batch(&mut gpu, &batch);
            // Counters partition the unique keys.
            let s = out.stats;
            prop_assert_eq!(s.hits + s.unified_hits + s.misses, s.unique_keys);
            // Rows are byte-exact.
            let mut k = 0;
            for (t, ids) in batch.table_ids.iter().enumerate() {
                for &id in ids {
                    prop_assert_eq!(&out.rows[k], &truth.read(t as u16, id));
                    k += 1;
                }
            }
            // Simulated time is monotone and finite.
            prop_assert!(gpu.now() > last);
            prop_assert!(gpu.now().is_valid());
            last = gpu.now();
            // Cache structural invariants.
            let u = sys.cache().effective_utilization();
            prop_assert!((0.0..=1.5).contains(&u), "utilization {}", u);
        }
    }

    #[test]
    fn phase_times_are_finite_and_nonnegative(sc in scenario()) {
        let ds = spec::synthetic(sc.n_tables, sc.corpus, sc.dim, -1.2);
        let store = CpuStore::new(&ds, DramSpec::xeon_6252());
        let mut sys = FlecheSystem::new(
            &ds,
            store,
            FlecheConfig {
                cache_fraction: sc.cache_fraction,
                fusion: sc.fusion,
                decoupling: sc.decoupling,
                unified_index: sc.unified_index,
                ..FlecheConfig::full(sc.cache_fraction)
            },
        );
        let mut gpu = Gpu::new(DeviceSpec::t4());
        let mut gen = TraceGenerator::new(&ds);
        let out = sys.query_batch(&mut gpu, &gen.next_batch(sc.batch));
        let p = out.stats.phases;
        for (name, v) in [
            ("cache_index", p.cache_index),
            ("cache_copy", p.cache_copy),
            ("dram_index", p.dram_index),
            ("dram_payload", p.dram_payload),
            ("other", p.other),
        ] {
            prop_assert!(v.is_valid(), "{} invalid: {}", name, v);
        }
        prop_assert!(p.total().as_ns() <= out.stats.wall.as_ns() * 2.0 + 1.0);
    }
}

#[test]
fn empty_batch_is_harmless() {
    let ds = spec::synthetic(4, 500, 8, -1.2);
    let store = CpuStore::new(&ds, DramSpec::xeon_6252());
    let mut sys = FlecheSystem::new(&ds, store, FlecheConfig::full(0.05));
    let mut gpu = Gpu::new(DeviceSpec::t4());
    let mut gen = TraceGenerator::new(&ds);
    let out = sys.query_batch(&mut gpu, &gen.next_batch(0));
    assert!(out.rows.is_empty());
    assert_eq!(out.stats.unique_keys, 0);
    // And a normal batch still works afterwards.
    let out = sys.query_batch(&mut gpu, &gen.next_batch(8));
    assert_eq!(out.rows.len(), 8 * 4);
}

#[test]
fn single_sample_batches_work() {
    let ds = spec::synthetic(3, 200, 4, -1.0);
    let truth = CpuStore::new(&ds, DramSpec::xeon_6252());
    let store = CpuStore::new(&ds, DramSpec::xeon_6252());
    let mut sys = FlecheSystem::new(&ds, store, FlecheConfig::full(0.1));
    let mut gpu = Gpu::new(DeviceSpec::t4());
    let mut gen = TraceGenerator::new(&ds);
    for _ in 0..20 {
        let batch = gen.next_batch(1);
        let out = sys.query_batch(&mut gpu, &batch);
        let mut k = 0;
        for (t, ids) in batch.table_ids.iter().enumerate() {
            for &id in ids {
                assert_eq!(out.rows[k], truth.read(t as u16, id));
                k += 1;
            }
        }
    }
}
