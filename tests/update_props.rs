//! Property-based tests on the online-update pipeline at the flat-cache
//! layer: per-key slot versions are monotone under arbitrary
//! apply/evict/restore interleavings, duplicated and reordered pushes are
//! idempotent (order never changes the final state), a base + delta chain
//! recovers every key to the chain's newest version, and a delta image
//! with any single byte flipped is always rejected before the cache is
//! touched.

use std::collections::BTreeMap;

use fleche_coding::{FlatKeyCodec, SizeAwareCodec};
use fleche_core::{CacheAnswer, FlatCache, FlatCacheConfig, SlotUpdate};
use fleche_store::versioned_embedding_value;
use fleche_workload::spec;
use proptest::prelude::*;

const DIM: u32 = 8;

fn codec() -> SizeAwareCodec {
    let ds = spec::synthetic(4, 500, DIM, -1.2);
    let corpora: Vec<u64> = ds.tables.iter().map(|t| t.corpus).collect();
    SizeAwareCodec::new(24, &corpora)
}

fn value_at(table: u16, id: u64, version: u64) -> Vec<f32> {
    let mut v = vec![0.0; DIM as usize];
    versioned_embedding_value(table, id, version, &mut v);
    v
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Distinct keys over a small corpus so interleavings collide on purpose.
fn keys_strategy(max: usize) -> impl Strategy<Value = Vec<(u16, u64)>> {
    prop::collection::vec((0u16..4, 0u64..200), 1..max).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

/// One step of the churn interleaving: `(op kind, key selector, version
/// increment)`.
fn ops_strategy() -> impl Strategy<Value = Vec<(u8, usize, u64)>> {
    prop::collection::vec((0u8..4, any::<usize>(), 1u64..4), 1..80)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any interleaving of ledger-versioned inserts, update bursts
    /// (fresh and deliberately stale pushes mixed), batch boundaries and
    /// eviction passes, a key's observed slot version never moves
    /// backwards and never runs ahead of the versions the ledger handed
    /// out.
    #[test]
    fn slot_versions_monotone_under_apply_evict_churn(
        keys in keys_strategy(24),
        ops in ops_strategy(),
    ) {
        let ds = spec::synthetic(4, 500, DIM, -1.2);
        let codec = codec();
        let config = FlatCacheConfig {
            admission_probability: 1.0,
            ..FlatCacheConfig::default()
        };
        // Small on purpose: churn must actually evict.
        let mut cache = FlatCache::new(&ds, u64::from(DIM) * 4 * 48, config);
        let mut ledger: BTreeMap<(u16, u64), u64> = BTreeMap::new();
        let mut observed: BTreeMap<(u16, u64), u64> = BTreeMap::new();
        let mut stamp = 0u32;

        for (kind, sel, inc) in ops {
            let (t, f) = keys[sel % keys.len()];
            stamp += 1;
            match kind {
                0 => {
                    // Miss-fill: the system always inserts at the ledger's
                    // latest version, never an older one, and stamps the
                    // slot with it (as the miss path's rewrite-to-latest
                    // does).
                    let v = ledger.entry((t, f)).or_insert(0);
                    *v += inc;
                    let v = *v;
                    if let (Some((class, slot)), _) =
                        cache.insert_value(t, codec.encode(t, f), &value_at(t, f, v), stamp)
                    {
                        cache.set_slot_version(class, slot, v);
                    }
                }
                1 => {
                    // Trainer burst over a few keys: odd slots re-send a
                    // stale version (drop/reorder aftermath), even slots
                    // advance the ledger.
                    let mut burst = Vec::new();
                    for (i, &(bt, bf)) in keys.iter().skip(sel % keys.len()).take(6).enumerate() {
                        let v = ledger.entry((bt, bf)).or_insert(0);
                        let push_v = if i % 2 == 0 {
                            *v += inc;
                            *v
                        } else {
                            v.saturating_sub(inc)
                        };
                        burst.push(SlotUpdate {
                            key: codec.encode(bt, bf),
                            version: push_v,
                            value: value_at(bt, bf, push_v),
                        });
                    }
                    let n = burst.len() as u64;
                    let report = cache.apply_updates(&burst);
                    prop_assert_eq!(report.applied + report.superseded + report.absent, n);
                }
                2 => {
                    cache.end_batch();
                }
                _ => {
                    cache.evict_pass();
                }
            }
            // Probe every key after every op: a hit's version must be
            // monotone per key and bounded by what the ledger issued.
            for &(pt, pf) in &keys {
                if let (CacheAnswer::Hit { class, slot }, _) =
                    cache.lookup(codec.encode(pt, pf), stamp)
                {
                    let v = cache.slot_version(class, slot);
                    let issued = ledger.get(&(pt, pf)).copied().unwrap_or(0);
                    prop_assert!(v <= issued, "key ({pt},{pf}) at v{v} > issued v{issued}");
                    let seen = observed.entry((pt, pf)).or_insert(0);
                    prop_assert!(v >= *seen, "key ({pt},{pf}) regressed v{} -> v{v}", *seen);
                    *seen = v;
                }
            }
        }
    }

    /// Applying the same pushes duplicated, reordered, and split across
    /// any number of apply calls converges on exactly the state the
    /// canonical one-shot apply produced — and re-applying the canonical
    /// burst afterwards writes nothing.
    #[test]
    fn duplicated_and_reordered_pushes_are_idempotent(
        keys in keys_strategy(16),
        raw_versions in prop::collection::vec(prop::collection::vec(1u64..50, 1..5), 16),
        shuffle_seed in any::<u64>(),
        split_seed in any::<usize>(),
    ) {
        let ds = spec::synthetic(4, 500, DIM, -1.2);
        let codec = codec();
        let config = FlatCacheConfig {
            admission_probability: 1.0,
            ..FlatCacheConfig::default()
        };
        let mut canonical: Vec<SlotUpdate> = Vec::new();
        for (i, &(t, f)) in keys.iter().enumerate() {
            for &v in &raw_versions[i % raw_versions.len()] {
                canonical.push(SlotUpdate {
                    key: codec.encode(t, f),
                    version: v,
                    value: value_at(t, f, v),
                });
            }
        }

        let seed_cache = |keys: &[(u16, u64)]| {
            let mut c = FlatCache::new(&ds, u64::from(DIM) * 4 * 1024, config);
            for (i, &(t, f)) in keys.iter().enumerate() {
                c.insert_value(t, codec.encode(t, f), &value_at(t, f, 0), i as u32);
            }
            c
        };

        let mut a = seed_cache(&keys);
        let ra = a.apply_updates(&canonical);
        prop_assert_eq!(ra.absent, 0, "every pushed key was seeded resident");

        // Duplicate every third push, then Fisher-Yates with a cheap LCG
        // (deterministic for a given seed), then split into two calls.
        let mut mangled = canonical.clone();
        for (i, u) in canonical.iter().enumerate() {
            if i % 3 == 0 {
                mangled.push(u.clone());
            }
        }
        let mut rng = shuffle_seed | 1;
        for i in (1..mangled.len()).rev() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            mangled.swap(i, (rng >> 33) as usize % (i + 1));
        }
        let cut = split_seed % (mangled.len() + 1);
        let mut b = seed_cache(&keys);
        b.apply_updates(&mangled[..cut]);
        b.apply_updates(&mangled[cut..]);

        for &(t, f) in &keys {
            let key = codec.encode(t, f);
            let (va, vb) = match (a.lookup(key, u32::MAX).0, b.lookup(key, u32::MAX).0) {
                (
                    CacheAnswer::Hit { class: ca, slot: sa },
                    CacheAnswer::Hit { class: cb, slot: sb },
                ) => {
                    prop_assert_eq!(
                        bits(a.read_hit(ca, sa)),
                        bits(b.read_hit(cb, sb)),
                        "key ({t},{f}) values diverged"
                    );
                    (a.slot_version(ca, sa), b.slot_version(cb, sb))
                }
                (other_a, other_b) => {
                    prop_assert!(false, "seeded key ({t},{f}) missing: {other_a:?}/{other_b:?}");
                    unreachable!()
                }
            };
            prop_assert_eq!(va, vb, "key ({t},{f}) versions diverged");
        }

        let again = a.apply_updates(&canonical);
        prop_assert_eq!(again.applied, 0, "a re-sent burst must be fully superseded");
    }

    /// A base checkpoint plus one delta restores every key to the newest
    /// version the chain recorded — never the stale base value.
    #[test]
    fn restore_chain_recovers_every_key_to_chain_max(
        keys in keys_strategy(24),
        advance in prop::collection::vec(any::<bool>(), 24),
        incs in prop::collection::vec(1u64..20, 24),
    ) {
        let ds = spec::synthetic(4, 500, DIM, -1.2);
        let codec = codec();
        let config = FlatCacheConfig {
            admission_probability: 1.0,
            ..FlatCacheConfig::default()
        };
        let mut cache = FlatCache::new(&ds, u64::from(DIM) * 4 * 1024, config);
        for (i, &(t, f)) in keys.iter().enumerate() {
            cache.insert_value(t, codec.encode(t, f), &value_at(t, f, 1), i as u32);
            if let (CacheAnswer::Hit { class, slot }, _) = cache.lookup(codec.encode(t, f), 0) {
                cache.set_slot_version(class, slot, 1);
            }
        }
        let (base, _) = cache.snapshot_at_with_slots(7);
        let mut base_versions: Vec<(u64, u64)> =
            keys.iter().map(|&(t, f)| (codec.encode(t, f).0, 1)).collect();
        base_versions.sort_unstable_by_key(|&(k, _)| k);

        // Advance a subset past the base (the first key always, so the
        // delta is never empty), then capture the delta.
        let mut expected: BTreeMap<(u16, u64), u64> = BTreeMap::new();
        let mut burst = Vec::new();
        for (i, &(t, f)) in keys.iter().enumerate() {
            let v = if i == 0 || advance[i % advance.len()] {
                1 + incs[i % incs.len()]
            } else {
                1
            };
            expected.insert((t, f), v);
            if v > 1 {
                burst.push(SlotUpdate {
                    key: codec.encode(t, f),
                    version: v,
                    value: value_at(t, f, v),
                });
            }
        }
        let report = cache.apply_updates(&burst);
        prop_assert_eq!(report.applied, burst.len() as u64);
        let (delta, _) = cache.snapshot_delta_with_slots(7, 1, &base_versions);
        prop_assert_eq!(
            delta.decode().expect("fresh delta decodes").len(),
            burst.len(),
            "delta must carry exactly the advanced keys"
        );

        let mut fresh = FlatCache::new(&ds, u64::from(DIM) * 4 * 1024, config);
        let report = fresh.restore_chain(&base, &[delta]).expect("intact chain restores");
        prop_assert_eq!(report.max_version, expected.values().copied().max().unwrap_or(0));
        for (&(t, f), &v) in &expected {
            match fresh.lookup(codec.encode(t, f), u32::MAX).0 {
                CacheAnswer::Hit { class, slot } => {
                    prop_assert_eq!(fresh.slot_version(class, slot), v);
                    prop_assert_eq!(bits(fresh.read_hit(class, slot)), bits(&value_at(t, f, v)));
                }
                other => prop_assert!(false, "restored key ({t},{f}) missing: {other:?}"),
            }
        }
    }

    /// Flipping any single byte of a delta image — header, entry stream,
    /// or trailer — makes the whole chain restore fail before the first
    /// mutation; the target cache stays exactly as it was.
    #[test]
    fn corrupt_delta_is_rejected_and_never_mutates(
        keys in keys_strategy(16),
        offset_seed in any::<u64>(),
        flip_base in any::<bool>(),
    ) {
        let ds = spec::synthetic(4, 500, DIM, -1.2);
        let codec = codec();
        let config = FlatCacheConfig {
            admission_probability: 1.0,
            ..FlatCacheConfig::default()
        };
        let mut cache = FlatCache::new(&ds, u64::from(DIM) * 4 * 1024, config);
        for (i, &(t, f)) in keys.iter().enumerate() {
            cache.insert_value(t, codec.encode(t, f), &value_at(t, f, 1), i as u32);
            if let (CacheAnswer::Hit { class, slot }, _) = cache.lookup(codec.encode(t, f), 0) {
                cache.set_slot_version(class, slot, 1);
            }
        }
        let (mut base, _) = cache.snapshot_at_with_slots(3);
        let mut base_versions: Vec<(u64, u64)> =
            keys.iter().map(|&(t, f)| (codec.encode(t, f).0, 1)).collect();
        base_versions.sort_unstable_by_key(|&(k, _)| k);
        let (t0, f0) = keys[0];
        cache.apply_updates(&[SlotUpdate {
            key: codec.encode(t0, f0),
            version: 5,
            value: value_at(t0, f0, 5),
        }]);
        let (mut delta, _) = cache.snapshot_delta_with_slots(3, 1, &base_versions);

        if flip_base {
            let offset = offset_seed % base.byte_len();
            prop_assert!(base.corrupt_byte(offset));
        } else {
            let offset = offset_seed % delta.byte_len();
            prop_assert!(delta.corrupt_byte(offset));
        }

        let mut fresh = FlatCache::new(&ds, u64::from(DIM) * 4 * 256, config);
        prop_assert!(fresh.restore_chain(&base, &[delta]).is_err());
        prop_assert_eq!(fresh.len(), 0, "rejected chain must not touch the cache");
    }
}
