//! End-to-end integration: both cache systems over the real dataset
//! generators, checked against the ground-truth store byte for byte, plus
//! cross-system invariants (counter consistency, warm-up behaviour).

use fleche_baseline::{BaselineConfig, PerTableCacheSystem};
use fleche_core::{FlecheConfig, FlecheSystem};
use fleche_gpu::{DeviceSpec, DramSpec, Gpu};
use fleche_store::api::EmbeddingCacheSystem;
use fleche_store::CpuStore;
use fleche_workload::{spec, DatasetSpec, TraceGenerator};

fn check_rows(
    sys: &mut dyn EmbeddingCacheSystem,
    gpu: &mut Gpu,
    ds: &DatasetSpec,
    batches: usize,
    batch_size: usize,
) {
    let truth = CpuStore::new(ds, DramSpec::xeon_6252());
    let mut gen = TraceGenerator::new(ds);
    for bi in 0..batches {
        let batch = gen.next_batch(batch_size);
        let out = sys.query_batch(gpu, &batch);
        assert_eq!(out.rows.len(), batch.total_ids());
        let mut k = 0;
        for (t, ids) in batch.table_ids.iter().enumerate() {
            for &id in ids {
                assert_eq!(
                    out.rows[k],
                    truth.read(t as u16, id),
                    "{} batch {bi} row {k} (table {t}, id {id})",
                    sys.name()
                );
                k += 1;
            }
        }
        // Counter partition invariant.
        let s = out.stats;
        assert_eq!(s.hits + s.unified_hits + s.misses, s.unique_keys);
    }
}

#[test]
fn fleche_serves_ground_truth_on_avazu_like() {
    let ds = spec::avazu();
    let store = CpuStore::new(&ds, DramSpec::xeon_6252());
    let mut sys = FlecheSystem::new(&ds, store, FlecheConfig::full(0.05));
    let mut gpu = Gpu::new(DeviceSpec::t4());
    check_rows(&mut sys, &mut gpu, &ds, 4, 96);
}

#[test]
fn fleche_serves_ground_truth_on_criteo_tb_like_dims() {
    // 128-dim embeddings exercise the multi-round copy paths.
    let ds = spec::criteo_tb();
    let store = CpuStore::new(&ds, DramSpec::xeon_6252());
    let mut sys = FlecheSystem::new(&ds, store, FlecheConfig::full(0.005));
    let mut gpu = Gpu::new(DeviceSpec::t4());
    check_rows(&mut sys, &mut gpu, &ds, 3, 48);
}

#[test]
fn baseline_serves_ground_truth_on_criteo_kaggle_like() {
    let ds = spec::criteo_kaggle();
    let store = CpuStore::new(&ds, DramSpec::xeon_6252());
    let mut sys = PerTableCacheSystem::new(
        &ds,
        store,
        BaselineConfig {
            cache_fraction: 0.05,
            ..BaselineConfig::default()
        },
    );
    let mut gpu = Gpu::new(DeviceSpec::t4());
    check_rows(&mut sys, &mut gpu, &ds, 4, 96);
}

#[test]
fn every_fleche_variant_serves_ground_truth() {
    let ds = spec::criteo_kaggle();
    for config in [
        FlecheConfig::flat_cache_only(0.05),
        FlecheConfig::with_fusion(0.05),
        FlecheConfig::without_unified_index(0.05),
        FlecheConfig::full(0.05),
    ] {
        let store = CpuStore::new(&ds, DramSpec::xeon_6252());
        let mut sys = FlecheSystem::new(&ds, store, config);
        let mut gpu = Gpu::new(DeviceSpec::t4());
        check_rows(&mut sys, &mut gpu, &ds, 3, 64);
    }
}

#[test]
fn correctness_survives_heavy_eviction_pressure() {
    // Tiny cache + full admission: constant churn, constant eviction, and
    // every returned row must still match the store.
    let ds = spec::avazu();
    let store = CpuStore::new(&ds, DramSpec::xeon_6252());
    let mut sys = FlecheSystem::new(
        &ds,
        store,
        FlecheConfig {
            cache: fleche_core::FlatCacheConfig {
                admission_probability: 1.0,
                evict_high_watermark: 0.7,
                evict_low_watermark: 0.3,
                ..Default::default()
            },
            ..FlecheConfig::full(0.002)
        },
    );
    let mut gpu = Gpu::new(DeviceSpec::t4());
    check_rows(&mut sys, &mut gpu, &ds, 6, 128);
    assert!(
        sys.cache().evict_passes() > 0,
        "pressure must trigger eviction"
    );
}

#[test]
fn correctness_survives_hotspot_drift() {
    let ds = spec::avazu();
    let truth = CpuStore::new(&ds, DramSpec::xeon_6252());
    let store = CpuStore::new(&ds, DramSpec::xeon_6252());
    let mut sys = FlecheSystem::new(&ds, store, FlecheConfig::full(0.02));
    let mut gpu = Gpu::new(DeviceSpec::t4());
    let mut gen = TraceGenerator::with_drift(&ds, Some(512));
    for _ in 0..8 {
        let batch = gen.next_batch(128);
        let out = sys.query_batch(&mut gpu, &batch);
        let mut k = 0;
        for (t, ids) in batch.table_ids.iter().enumerate() {
            for &id in ids {
                assert_eq!(out.rows[k], truth.read(t as u16, id));
                k += 1;
            }
        }
    }
}

#[test]
fn simulated_clocks_are_monotone_across_systems() {
    let ds = spec::avazu();
    let store = CpuStore::new(&ds, DramSpec::xeon_6252());
    let mut sys = FlecheSystem::new(&ds, store, FlecheConfig::full(0.05));
    let mut gpu = Gpu::new(DeviceSpec::t4());
    let mut gen = TraceGenerator::new(&ds);
    let mut last = gpu.now();
    for _ in 0..5 {
        sys.query_batch(&mut gpu, &gen.next_batch(64));
        assert!(gpu.now() > last, "time must advance every batch");
        last = gpu.now();
    }
}
