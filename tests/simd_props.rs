//! Property-based bit-identity tests for the vectorized host hot paths:
//! whatever the runtime SIMD dispatch picks, every batch/blocked entry
//! point must produce exactly the bits its scalar reference produces —
//! across non-multiple-of-lane dims, slice offsets, NaN payloads, ragged
//! batch shapes, and duplicate keys.

use fleche_coding::{FixedLenCodec, FlatKeyCodec, SizeAwareCodec};
use fleche_gpu::DramSpec;
use fleche_index::{Loc, SlabHash};
use fleche_store::{CpuStore, Pooling};
use fleche_workload::spec;
use proptest::prelude::*;

/// Arbitrary f32s by bit pattern — includes negatives, subnormals,
/// infinities, and NaNs with distinct payloads. Bit-identity claims must
/// hold for all of them.
fn any_f32() -> impl Strategy<Value = f32> {
    any::<u32>().prop_map(f32::from_bits)
}

fn f32_vec(len: impl Into<prop::collection::SizeRange>) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(any_f32(), len)
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The dispatched elementwise/blocked primitives equal their portable
    /// twins bit for bit, including when the slices start at an arbitrary
    /// offset (alignment must not matter).
    #[test]
    fn dispatch_paths_are_bit_identical(
        a in f32_vec(0..70usize),
        b in f32_vec(0..70usize),
        offset in 0usize..8,
    ) {
        let a = &a[offset.min(a.len())..];
        let b = &b[offset.min(b.len())..];
        let mut d = a.to_vec();
        let mut p = a.to_vec();
        fleche_simd::add_assign(&mut d, b);
        fleche_simd::add_assign_portable(&mut p, b);
        prop_assert_eq!(bits(&d), bits(&p));
        let mut d = a.to_vec();
        let mut p = a.to_vec();
        fleche_simd::max_assign(&mut d, b);
        fleche_simd::max_assign_portable(&mut p, b);
        prop_assert_eq!(bits(&d), bits(&p));
        prop_assert_eq!(
            fleche_simd::dot(a, b).to_bits(),
            fleche_simd::dot_portable(a, b).to_bits()
        );
    }

    /// The procedural embedding fill (the gather path's bottleneck) is
    /// bit-identical across dispatch paths for any stream base and any
    /// dim, and stays in the documented [-1, 1) range.
    #[test]
    fn unit_fill_is_bit_identical(base in any::<u64>(), dim in 0usize..70) {
        let mut d = vec![0.0f32; dim];
        let mut p = vec![0.0f32; dim];
        fleche_simd::unit_fill(base, &mut d);
        fleche_simd::unit_fill_portable(base, &mut p);
        prop_assert_eq!(bits(&d), bits(&p));
        prop_assert!(d.iter().all(|v| (-1.0..1.0).contains(v)));
    }

    /// `dot` follows the documented canonical blocked order exactly: 8
    /// round-robin lanes, fixed combine tree.
    #[test]
    fn dot_is_the_canonical_blocked_order(a in f32_vec(0..70usize), b in f32_vec(0..70usize)) {
        let n = a.len().min(b.len());
        let mut lanes = [0.0f32; fleche_simd::LANES];
        for i in 0..n {
            lanes[i % fleche_simd::LANES] += a[i] * b[i];
        }
        let m = [
            lanes[0] + lanes[4],
            lanes[1] + lanes[5],
            lanes[2] + lanes[6],
            lanes[3] + lanes[7],
        ];
        let want = (m[0] + m[2]) + (m[1] + m[3]);
        prop_assert_eq!(fleche_simd::dot(&a, &b).to_bits(), want.to_bits());
    }

    /// The interleaved batch checksum equals the serial per-slot FNV-1a
    /// for every slot, for ragged dims and every batch-length remainder
    /// mod 4 — and so does the pool's exported batch entry point.
    #[test]
    fn batch_checksum_is_per_slot_identical(
        slots in prop::collection::vec(f32_vec(0..40usize), 0..11),
    ) {
        let views: Vec<&[f32]> = slots.iter().map(Vec::as_slice).collect();
        let serial: Vec<u32> = views.iter().map(|v| fleche_simd::fnv1a(v)).collect();
        prop_assert_eq!(&fleche_simd::checksum_batch(&views), &serial);
        prop_assert_eq!(&fleche_simd::checksum_batch_portable(&views), &serial);
        prop_assert_eq!(&fleche_index::fnv1a_batch(&views), &serial);
    }

    /// Pooling through the vectorized accumulate/finish path equals a
    /// naive scalar reduction, bitwise, for all three modes — and the
    /// store's streaming gather equals reducing materialized rows.
    #[test]
    fn pooled_gather_matches_scalar_reduce(
        n_ids in 1usize..24,
        table in 0u16..4,
        seed in any::<u64>(),
        mode in prop::sample::select(vec![Pooling::Sum, Pooling::Avg, Pooling::Max]),
    ) {
        let ds = spec::synthetic(4, 500, 8, -1.2);
        let store = CpuStore::new(&ds, DramSpec::xeon_6252());
        let ids: Vec<u64> = (0..n_ids as u64)
            .map(|i| (seed.wrapping_add(i.wrapping_mul(97))) % 500)
            .collect();
        // Scalar reference: naive per-element accumulation over
        // materialized rows (the pre-vectorization shape).
        let rows: Vec<Vec<f32>> = ids.iter().map(|&id| store.read(table, id)).collect();
        let mut want = vec![
            match mode {
                Pooling::Max => f32::NEG_INFINITY,
                _ => 0.0,
            };
            rows[0].len()
        ];
        for row in &rows {
            for (w, &r) in want.iter_mut().zip(row) {
                match mode {
                    Pooling::Max => *w = w.max(r),
                    _ => *w += r,
                }
            }
        }
        if mode == Pooling::Avg {
            for w in &mut want {
                *w /= ids.len() as f32;
            }
        }
        prop_assert_eq!(bits(&store.pooled(table, &ids, mode)), bits(&want));
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        prop_assert_eq!(bits(&mode.reduce(&refs)), bits(&want));
    }

    /// Mask-based batch probing returns exactly what sequential per-key
    /// lookups return — locations AND per-key probe statistics — for
    /// arbitrary hit/miss mixes including duplicate keys.
    #[test]
    fn slab_lookup_batch_matches_sequential(
        inserts in prop::collection::vec(1u64..400, 0..200),
        probes in prop::collection::vec(1u64..500, 0..120),
        seed in any::<u64>(),
    ) {
        let mut batch_h = SlabHash::with_seed(8, seed);
        let mut seq_h = SlabHash::with_seed(8, seed);
        for (i, &k) in inserts.iter().enumerate() {
            let loc = Loc::Hbm { class: 0, slot: i as u32 }.pack();
            batch_h.insert(k, loc, 0);
            seq_h.insert(k, loc, 0);
        }
        let batch = batch_h.lookup_batch(&probes, Some(3));
        let seq: Vec<_> = probes.iter().map(|&k| seq_h.lookup(k, Some(3))).collect();
        prop_assert_eq!(batch, seq);
    }

    /// Every codec batch entry point equals its per-key form, key for
    /// key, for both codecs.
    #[test]
    fn codec_batches_match_per_key(
        corpora in prop::collection::vec(1u64..100_000, 1..8),
        pairs in prop::collection::vec((0u16..8, any::<u64>()), 0..120),
    ) {
        let n_tables = corpora.len() as u16;
        let fixed = FixedLenCodec::new(24, 4, corpora.clone());
        let aware = SizeAwareCodec::new(24, &corpora);
        // Lossless tables contract: feature < corpus (the system only
        // encodes in-corpus features), so clamp the raw u64 down.
        let pairs: Vec<(u16, u64)> = pairs
            .into_iter()
            .map(|(t, f)| {
                let t = t % n_tables;
                (t, f % corpora[t as usize])
            })
            .collect();
        for codec in [&fixed as &dyn FlatKeyCodec, &aware] {
            let per_key: Vec<_> = pairs.iter().map(|&(t, f)| codec.encode(t, f)).collect();
            prop_assert_eq!(&codec.encode_pairs(&pairs), &per_key);
            for t in 0..n_tables {
                let feats: Vec<u64> = pairs
                    .iter()
                    .filter(|&&(pt, _)| pt == t)
                    .map(|&(_, f)| f)
                    .collect();
                let batch = codec.encode_batch(t, &feats);
                let singles: Vec<_> = feats.iter().map(|&f| codec.encode(t, f)).collect();
                prop_assert_eq!(batch, singles);
            }
            let decoded: Vec<_> = per_key.iter().map(|&k| codec.decode(k)).collect();
            prop_assert_eq!(codec.decode_batch(&per_key), decoded);
        }
    }
}
