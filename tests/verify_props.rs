//! Property tests for the `fleche-verify` model checker itself.
//!
//! Two obligations beyond the per-model unit tests:
//!
//! * **Determinism** — exploration is a pure function of the model and
//!   the config: two runs over the same randomized configuration must
//!   produce bit-identical counters and the same verdict (same failure
//!   reason, same counterexample length). The explorer's memo table and
//!   sleep sets use hashing internally, so this is worth checking — an
//!   iteration-order leak would make counterexamples irreproducible.
//! * **Self-test under randomization** — the shipped mutants must die
//!   with a non-empty counterexample trace, and each faithful model must
//!   pass exhaustively for every small configuration, not just the
//!   shipped one.

use fleche_verify::explore::{explore, ExploreConfig, ExploreResult, Model};
use fleche_verify::{batcher, queue, ring, version};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// Runs the explorer twice over the same model and asserts the runs are
/// indistinguishable; returns the first run for verdict checks.
fn explore_twice(model: &impl Model) -> Result<ExploreResult, TestCaseError> {
    let cfg = ExploreConfig::default();
    let a = explore(model, &cfg);
    let b = explore(model, &cfg);
    prop_assert_eq!(a.stats, b.stats, "explorer counters diverged");
    let (fa, fb) = (&a.failure, &b.failure);
    prop_assert_eq!(
        fa.as_ref().map(|f| &f.reason),
        fb.as_ref().map(|f| &f.reason),
        "verdict diverged"
    );
    prop_assert_eq!(
        fa.as_ref().map(|f| f.trace.len()),
        fb.as_ref().map(|f| f.trace.len()),
        "counterexample length diverged"
    );
    Ok(a)
}

/// Queue configs the model accepts: every lane needs a consumer
/// (`consumers >= lanes`, clamped in the map), small enough to stay well
/// under the state cap.
fn queue_configs() -> impl Strategy<Value = queue::QueueConfig> {
    (1usize..4, 1usize..4, 1usize..3, 0usize..5).prop_map(|(lanes, consumers, capacity, items)| {
        queue::QueueConfig {
            lanes,
            capacity,
            items,
            consumers: consumers.max(lanes),
            mutant: queue::QueueMutant::None,
        }
    })
}

/// Version configs: raw slot indices are folded into range so every
/// update targets a real slot.
fn version_configs() -> impl Strategy<Value = version::VersionConfig> {
    (
        1usize..3,
        prop::collection::vec((0usize..8, 2u64..5), 0..4),
        1usize..3,
        1usize..3,
    )
        .prop_map(
            |(slots, raw, batches, reads_per_batch)| version::VersionConfig {
                slots,
                updates: raw.into_iter().map(|(s, v)| (s % slots, v)).collect(),
                batches,
                reads_per_batch,
                mutant: version::VersionMutant::None,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The faithful queue protocol holds for every small configuration,
    /// and its exploration is deterministic.
    #[test]
    fn queue_exploration_is_deterministic_and_green(cfg in queue_configs()) {
        let r = explore_twice(&queue::QueueModel::new(cfg))?;
        prop_assert!(r.passed(), "{}", r.failure.unwrap().render());
        prop_assert!(r.stats.complete_runs > 0);
    }

    /// Same for the pipeline ring, across depths and batch counts.
    #[test]
    fn ring_exploration_is_deterministic_and_green(
        depth in 1usize..4,
        items in 1usize..9,
    ) {
        let r = explore_twice(&ring::RingModel::new(ring::RingConfig {
            depth,
            items,
            mutant_no_credit: false,
        }))?;
        prop_assert!(r.passed(), "{}", r.failure.unwrap().render());
        prop_assert!(r.stats.complete_runs > 0);
    }

    /// Same for the micro-batcher's seal/linger discipline.
    #[test]
    fn batcher_exploration_is_deterministic_and_green(
        arrivals in 1usize..4,
        max_batch in 1usize..4,
        timer_rounds in 0usize..3,
    ) {
        let r = explore_twice(&batcher::BatcherModel::new(batcher::BatcherConfig {
            arrivals,
            max_batch,
            timer_rounds,
            mutant_stale_seal: false,
        }))?;
        prop_assert!(r.passed(), "{}", r.failure.unwrap().render());
        prop_assert!(r.stats.complete_runs > 0);
    }

    /// Same for batch-boundary version visibility.
    #[test]
    fn version_exploration_is_deterministic_and_green(cfg in version_configs()) {
        let r = explore_twice(&version::VersionModel::new(cfg))?;
        prop_assert!(r.passed(), "{}", r.failure.unwrap().render());
        prop_assert!(r.stats.complete_runs > 0);
    }

    /// A queue mutant's counterexample is also reproduced exactly.
    #[test]
    fn mutant_counterexamples_are_deterministic(
        mutant in prop_oneof![
            Just(queue::QueueMutant::IfWait),
            Just(queue::QueueMutant::MissingNotify),
        ],
    ) {
        let cfg = queue::QueueConfig { mutant, ..queue::QueueConfig::default_property() };
        let r = explore_twice(&queue::QueueModel::new(cfg))?;
        prop_assert!(r.failure.is_some(), "seeded bug survived");
    }
}

/// Every shipped mutant must die with a counterexample whose reason
/// matches the registered expectation and whose trace is a real
/// schedule (non-empty, renderable).
#[test]
fn every_shipped_mutant_dies_with_a_counterexample() {
    let config = ExploreConfig::default();
    for m in fleche_verify::mutants() {
        let r = m.run(&config);
        let f = r
            .failure
            .unwrap_or_else(|| panic!("mutant {} survived exploration", m.name));
        assert!(
            f.reason.contains(m.expect),
            "mutant {}: reason `{}` missing `{}`",
            m.name,
            f.reason,
            m.expect
        );
        assert!(!f.trace.is_empty(), "mutant {}: empty trace", m.name);
        assert!(
            !f.render().is_empty(),
            "mutant {}: unrenderable counterexample",
            m.name
        );
    }
}

/// The full registry is green under the default exploration budget —
/// the same gate CI runs via `cargo run -p fleche-verify`.
#[test]
fn registry_report_is_ok() {
    let report = fleche_verify::run_all(&ExploreConfig::default());
    assert!(report.ok());
    for p in &report.properties {
        assert!(p.stats.complete_runs > 0, "{} explored nothing", p.name);
    }
}
