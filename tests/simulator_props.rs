//! Property-based tests on the GPU simulator: time monotonicity, bandwidth
//! conservation, launch-overhead accounting, and fusion's timing advantage
//! hold for arbitrary kernel mixes.

use fleche_gpu::{DeviceSpec, Gpu, KernelDesc, KernelWork};
use proptest::prelude::*;

fn kernel_strategy() -> impl Strategy<Value = KernelDesc> {
    (1u32..50_000, 0u64..(8 << 20), 0u32..16).prop_map(|(threads, bytes, rounds)| {
        KernelDesc::new(
            "prop",
            threads,
            KernelWork {
                global_bytes: bytes,
                flops: 0,
                dependent_rounds: rounds,
                shared_accesses: 0,
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn host_time_is_monotone(kernels in prop::collection::vec(kernel_strategy(), 1..24)) {
        let mut gpu = Gpu::new(DeviceSpec::t4());
        let streams = gpu.streams(4);
        let mut last = gpu.now();
        for (i, k) in kernels.into_iter().enumerate() {
            gpu.launch(streams[i % 4], k);
            prop_assert!(gpu.now() > last);
            last = gpu.now();
        }
        let end = gpu.sync_all();
        prop_assert!(end >= last);
        prop_assert!(end.is_valid());
    }

    #[test]
    fn wall_time_at_least_best_case_bandwidth(kernels in prop::collection::vec(kernel_strategy(), 1..16)) {
        // Total traffic over peak bandwidth lower-bounds the device time,
        // whatever the schedule.
        let spec = DeviceSpec::t4();
        let total_bytes: u64 = kernels.iter().map(|k| k.work.global_bytes).sum();
        let mut gpu = Gpu::new(spec.clone());
        let streams = gpu.streams(kernels.len());
        let t0 = gpu.now();
        for (i, k) in kernels.into_iter().enumerate() {
            gpu.launch(streams[i], k);
        }
        let end = gpu.sync_all();
        let floor = spec.hbm_bandwidth.transfer_time(total_bytes);
        prop_assert!(
            (end - t0).as_ns() + 1e-6 >= floor.as_ns(),
            "wall {} under bandwidth floor {}",
            end - t0,
            floor
        );
    }

    #[test]
    fn launches_cost_linear_host_overhead(n in 1usize..40) {
        let mut gpu = Gpu::new(DeviceSpec::t4());
        let streams = gpu.streams(n);
        let t0 = gpu.now();
        for &s in &streams {
            gpu.launch(s, KernelDesc::new("k", 128, KernelWork::NOOP));
        }
        let expect = gpu.spec().kernel_launch_overhead * n as f64;
        prop_assert!(((gpu.now() - t0) - expect).as_ns().abs() < 1e-6);
    }

    #[test]
    fn one_fused_launch_never_slower_than_split(kernels in prop::collection::vec(kernel_strategy(), 2..12)) {
        // Same aggregate work as one kernel vs as N kernels on N streams:
        // the fused form must not be slower (it saves N-1 launches and
        // runs at the combined parallelism).
        let spec = DeviceSpec::t4();
        let mut fused_work = KernelWork::NOOP;
        let mut fused_threads = 0u32;
        for k in &kernels {
            fused_work.merge_concurrent(&k.work);
            fused_threads = fused_threads.saturating_add(k.threads);
        }

        let mut g1 = Gpu::new(spec.clone());
        let streams = g1.streams(kernels.len());
        let t0 = g1.now();
        for (i, k) in kernels.into_iter().enumerate() {
            g1.launch(streams[i], k);
        }
        let split = g1.sync_all() - t0;

        let mut g2 = Gpu::new(spec);
        let s = g2.default_stream();
        let t0 = g2.now();
        g2.launch(s, KernelDesc::new("fused", fused_threads, fused_work));
        let fused = g2.sync_stream(s) - t0;

        prop_assert!(
            fused.as_ns() <= split.as_ns() + 1e-6,
            "fused {fused} slower than split {split}"
        );
    }

    #[test]
    fn timeline_busy_never_exceeds_wall(kernels in prop::collection::vec(kernel_strategy(), 1..10)) {
        let mut gpu = Gpu::new(DeviceSpec::t4());
        let s = gpu.default_stream();
        let t0 = gpu.now();
        for k in kernels {
            gpu.launch(s, k);
        }
        let end = gpu.sync_stream(s);
        let busy = gpu.device_busy(t0, end);
        prop_assert!(busy.as_ns() <= (end - t0).as_ns() + 1e-6);
    }
}
