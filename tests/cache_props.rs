//! Property-based tests on the cache substrate: the slab-hash index must
//! behave like a map under arbitrary operation sequences, the pool must
//! never double-allocate, and the flat cache must stay internally
//! consistent under random workloads with eviction.

use fleche_coding::{FlatKeyCodec, SizeAwareCodec};
use fleche_core::{FlatCache, FlatCacheConfig};
use fleche_index::{ClassSpec, Loc, SlabHash, SlabPool};
use fleche_workload::spec;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    Insert(u64, u32),
    Lookup(u64),
    Remove(u64),
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (1u64..200, 0u32..1_000).prop_map(|(k, s)| Op::Insert(k, s)),
            (1u64..200).prop_map(Op::Lookup),
            (1u64..200).prop_map(Op::Remove),
        ],
        1..400,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn slab_hash_behaves_like_a_map(ops in ops_strategy(), buckets in 1usize..64) {
        let mut h = SlabHash::new(buckets);
        let mut model: HashMap<u64, u32> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, slot) => {
                    h.insert(k, Loc::Hbm { class: 0, slot }.pack(), 0);
                    model.insert(k, slot);
                }
                Op::Lookup(k) => {
                    let got = h.lookup(k, None).0.map(|p| match p.unpack() {
                        Loc::Hbm { slot, .. } => slot,
                        Loc::Dram { .. } => unreachable!("only HBM inserted"),
                    });
                    prop_assert_eq!(got, model.get(&k).copied());
                }
                Op::Remove(k) => {
                    let got = h.remove(k).0.is_some();
                    prop_assert_eq!(got, model.remove(&k).is_some());
                }
            }
            prop_assert_eq!(h.len(), model.len());
        }
        // Final scan agrees with the model.
        let (entries, _) = h.scan();
        prop_assert_eq!(entries.len(), model.len());
        for e in entries {
            prop_assert!(model.contains_key(&e.key));
        }
    }

    #[test]
    fn pool_never_double_allocates(slots in 1u32..64, rounds in 1usize..200) {
        let mut pool = SlabPool::new(&[ClassSpec { dim: 4, slots }]);
        let mut live: Vec<u32> = Vec::new();
        for i in 0..rounds {
            if i % 3 == 2 && !live.is_empty() {
                let slot = live.swap_remove(i % live.len());
                pool.free(0, slot).expect("was live");
            } else if let Ok((slot, _)) = pool.alloc(0) {
                prop_assert!(!live.contains(&slot), "slot {slot} allocated twice");
                live.push(slot);
            } else {
                prop_assert_eq!(live.len(), slots as usize, "full means all live");
            }
        }
        prop_assert_eq!(pool.allocated_bytes(), live.len() as u64 * 16);
    }

    #[test]
    fn flat_cache_hits_return_what_was_inserted(
        keys in prop::collection::vec((0u16..4, 0u64..500), 1..200),
        cache_slots in 8u64..256,
    ) {
        let ds = spec::synthetic(4, 500, 8, -1.2);
        let corpora: Vec<u64> = ds.tables.iter().map(|t| t.corpus).collect();
        let codec = SizeAwareCodec::new(24, &corpora);
        let mut cache = FlatCache::new(
            &ds,
            8 * 4 * cache_slots,
            FlatCacheConfig { admission_probability: 1.0, ..FlatCacheConfig::default() },
        );
        let mut stamp = 0u32;
        let mut inserted: HashMap<u64, Vec<f32>> = HashMap::new();
        for (t, f) in keys {
            stamp += 1;
            let key = codec.encode(t, f);
            let value: Vec<f32> = (0..8).map(|i| (t as f32) * 1000.0 + (f as f32) + i as f32).collect();
            if cache.insert_value(t, key, &value, stamp).0.is_some() {
                inserted.insert(key.0, value);
            }
            if cache.needs_eviction() {
                cache.evict_pass();
                let (entries, _) = {
                    // After eviction, drop our model entries that are gone.
                    let snapshot: Vec<u64> = inserted.keys().copied().collect();
                    for k in snapshot {
                        if matches!(cache.lookup(fleche_coding::FlatKey(k), stamp).0, fleche_core::CacheAnswer::Miss) {
                            inserted.remove(&k);
                        }
                    }
                    (Vec::<u8>::new(), ())
                };
                let _ = entries;
            }
            cache.end_batch();
        }
        // Every key our model believes cached must hit with the same bytes.
        for (k, v) in &inserted {
            match cache.lookup(fleche_coding::FlatKey(*k), stamp + 1).0 {
                fleche_core::CacheAnswer::Hit { class, slot } => {
                    prop_assert_eq!(cache.read_hit(class, slot), v.as_slice());
                }
                other => prop_assert!(false, "expected hit for {k}, got {other:?}"),
            }
        }
    }

    #[test]
    fn utilization_is_always_a_fraction(
        inserts in 1usize..300,
        cache_slots in 4u64..128,
    ) {
        let ds = spec::synthetic(2, 1_000, 8, -1.2);
        let corpora: Vec<u64> = ds.tables.iter().map(|t| t.corpus).collect();
        let codec = SizeAwareCodec::new(24, &corpora);
        let mut cache = FlatCache::new(&ds, 8 * 4 * cache_slots, FlatCacheConfig::default());
        for i in 0..inserts {
            let t = (i % 2) as u16;
            let f = (i as u64 * 17) % 1_000;
            let v = vec![i as f32; 8];
            let _ = cache.insert_value(t, codec.encode(t, f), &v, i as u32);
            let u = cache.effective_utilization();
            prop_assert!((0.0..=1.5).contains(&u), "utilization {u}");
            if cache.needs_eviction() {
                cache.evict_pass();
                cache.end_batch();
                cache.end_batch();
            }
        }
    }
}

#[test]
fn collision_overwrite_keeps_latest_value() {
    // Two features forced onto the same flat key: the cache serves the
    // most recently inserted value for both — exactly the accuracy loss
    // the coding experiment quantifies, but never a torn read.
    let ds = spec::synthetic(1, 1_000, 8, -1.2);
    let codec = SizeAwareCodec::new(4, &[1_000]); // 16 slots: collisions certain
    let mut cache = FlatCache::new(
        &ds,
        1 << 14,
        FlatCacheConfig {
            admission_probability: 1.0,
            ..FlatCacheConfig::default()
        },
    );
    // Find two features sharing a key.
    let mut by_key: HashMap<u64, u64> = HashMap::new();
    let (f1, f2) = (0..1_000u64)
        .find_map(|f| {
            let k = codec.encode(0, f).0;
            if let Some(&prev) = by_key.get(&k) {
                Some((prev, f))
            } else {
                by_key.insert(k, f);
                None
            }
        })
        .expect("4-bit keys must collide in 1000 features");
    let k1 = codec.encode(0, f1);
    let k2 = codec.encode(0, f2);
    assert_eq!(k1, k2);
    cache.insert_value(0, k1, &[1.0; 8], 1);
    cache.insert_value(0, k2, &[2.0; 8], 2);
    match cache.lookup(k1, 3).0 {
        fleche_core::CacheAnswer::Hit { class, slot } => {
            assert_eq!(cache.read_hit(class, slot), &[2.0; 8]);
        }
        other => panic!("expected hit, got {other:?}"),
    }
    assert_eq!(cache.len(), 1, "colliding keys share one entry");
}
