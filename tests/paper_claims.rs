//! Shape-level assertions of the paper's headline claims at test scale:
//! the qualitative results every figure harness reproduces in full must
//! already hold in miniature, so regressions surface in `cargo test`.

use fleche_baseline::{BaselineConfig, PerTableCacheSystem};
use fleche_core::{FlecheConfig, FlecheSystem};
use fleche_gpu::{DeviceSpec, DramSpec, Gpu, Ns};
use fleche_store::api::EmbeddingCacheSystem;
use fleche_store::CpuStore;
use fleche_workload::{spec, DatasetSpec, FrequencyCensus, TraceGenerator};

fn warm_and_measure(
    sys: &mut dyn EmbeddingCacheSystem,
    gpu: &mut Gpu,
    ds: &DatasetSpec,
    warm: usize,
    measure: usize,
    batch: usize,
) -> (Ns, f64) {
    let mut gen = TraceGenerator::new(ds);
    for _ in 0..warm {
        sys.query_batch(gpu, &gen.next_batch(batch));
    }
    sys.reset_stats();
    let mut wall = Ns::ZERO;
    for _ in 0..measure {
        wall += sys.query_batch(gpu, &gen.next_batch(batch)).stats.wall;
    }
    (wall / measure as f64, sys.lifetime_stats().hit_rate())
}

fn fleche(ds: &DatasetSpec, config: FlecheConfig) -> (FlecheSystem, Gpu) {
    let store = CpuStore::new(ds, DramSpec::xeon_6252());
    (
        FlecheSystem::new(ds, store, config),
        Gpu::new(DeviceSpec::t4()),
    )
}

fn baseline(ds: &DatasetSpec, fraction: f64) -> (PerTableCacheSystem, Gpu) {
    let store = CpuStore::new(ds, DramSpec::xeon_6252());
    (
        PerTableCacheSystem::new(
            ds,
            store,
            BaselineConfig {
                cache_fraction: fraction,
                ..BaselineConfig::default()
            },
        ),
        Gpu::new(DeviceSpec::t4()),
    )
}

/// Issue 1 (paper §2.2 / Fig 3): the static per-table cache leaves a hit
/// rate gap to the Optimal oracle; flat cache closes most of it.
#[test]
fn flat_cache_closes_the_hit_rate_gap() {
    let ds = spec::criteo_kaggle();
    let fraction = 0.05;

    // Optimal hit rate over the measured window.
    let mut gen = TraceGenerator::new(&ds);
    let mut census = FrequencyCensus::new();
    for _ in 0..18 {
        census.observe(&gen.next_batch(256));
    }
    let dims: Vec<u32> = ds.tables.iter().map(|t| t.dim).collect();
    let optimal = census.optimal_hit_rate(ds.cache_bytes(fraction), |t| dims[t as usize]);

    let (mut b, mut gb) = baseline(&ds, fraction);
    let (_, hit_base) = warm_and_measure(&mut b, &mut gb, &ds, 12, 6, 256);
    let (mut f, mut gf) = fleche(&ds, FlecheConfig::full(fraction));
    let (_, hit_fleche) = warm_and_measure(&mut f, &mut gf, &ds, 12, 6, 256);

    assert!(
        optimal > hit_base + 0.05,
        "per-table cache should trail optimal: optimal {optimal:.3} vs baseline {hit_base:.3}"
    );
    assert!(
        hit_fleche > hit_base,
        "flat cache must beat per-table: {hit_fleche:.3} vs {hit_base:.3}"
    );
}

/// Issue 2 (paper §2.2 / Fig 4): with many tables, most of the baseline's
/// cache-query time is maintenance, not execution.
#[test]
fn maintenance_dominates_with_many_tables() {
    let ds = spec::synthetic(40, 10_000, 32, -1.2);
    let (mut sys, mut gpu) = baseline(&ds, 0.05);
    let mut gen = TraceGenerator::new(&ds);
    for _ in 0..6 {
        sys.query_batch(&mut gpu, &gen.next_batch(250));
    }
    gpu.clear_timeline();
    let t0 = gpu.now();
    sys.query_batch(&mut gpu, &gen.next_batch(250));
    let wall = gpu.now() - t0;
    let busy = gpu.device_busy(t0, gpu.now());
    let maintenance = wall - busy;
    assert!(
        maintenance > busy,
        "40 tables: maintenance ({maintenance}) should exceed execution ({busy})"
    );
}

/// §3.2 / Fig 14: fused query latency stays nearly flat as table count
/// grows, while the per-table baseline's grows.
#[test]
fn fusion_flattens_the_table_count_curve() {
    let run = |n_tables: usize, fused: bool| -> Ns {
        let ds = spec::synthetic(n_tables, 4_000, 16, -1.2);
        if fused {
            let (mut sys, mut gpu) = fleche(&ds, FlecheConfig::without_unified_index(0.05));
            warm_and_measure(&mut sys, &mut gpu, &ds, 6, 4, 200).0
        } else {
            let (mut sys, mut gpu) = baseline(&ds, 0.05);
            warm_and_measure(&mut sys, &mut gpu, &ds, 6, 4, 200).0
        }
    };
    let base_growth = run(48, false).as_ns() / run(6, false).as_ns();
    let fleche_growth = run(48, true).as_ns() / run(6, true).as_ns();
    assert!(
        base_growth > fleche_growth * 1.5,
        "baseline growth {base_growth:.2}x vs fleche {fleche_growth:.2}x"
    );
}

/// §3.3: each workflow stage improves the embedding latency at batch scale
/// (the Fig 16 cumulative ordering).
#[test]
fn technique_stack_is_cumulative() {
    let ds = spec::criteo_kaggle();
    let mut walls = Vec::new();
    for config in [
        FlecheConfig::flat_cache_only(0.05),
        FlecheConfig::with_fusion(0.05),
        FlecheConfig::full(0.05),
    ] {
        let (mut sys, mut gpu) = fleche(&ds, config);
        let (wall, _) = warm_and_measure(&mut sys, &mut gpu, &ds, 10, 6, 512);
        walls.push(wall);
    }
    assert!(
        walls[1] < walls[0],
        "+fusion ({}) must beat +FC ({})",
        walls[1],
        walls[0]
    );
    assert!(
        walls[2] < walls[0],
        "full fleche ({}) must beat +FC ({})",
        walls[2],
        walls[0]
    );
}

/// End-to-end: Fleche outperforms the baseline on all three dataset shapes
/// at the paper's cache fractions.
#[test]
fn fleche_wins_on_all_three_datasets() {
    for (ds, fraction) in [
        (spec::avazu(), 0.05),
        (spec::criteo_kaggle(), 0.05),
        (spec::criteo_tb(), 0.005),
    ] {
        let (mut b, mut gb) = baseline(&ds, fraction);
        let (wall_b, _) = warm_and_measure(&mut b, &mut gb, &ds, 8, 4, 256);
        let (mut f, mut gf) = fleche(&ds, FlecheConfig::full(fraction));
        let (wall_f, _) = warm_and_measure(&mut f, &mut gf, &ds, 8, 4, 256);
        let speedup = wall_b.as_ns() / wall_f.as_ns();
        assert!(
            speedup > 1.2,
            "{}: speedup {speedup:.2} (fleche {wall_f}, baseline {wall_b})",
            ds.name
        );
    }
}
