//! Giant-model mode (paper §5): the CPU-DRAM layer as a cache over a
//! remote parameter server, with unified-index pointer invalidation.

use fleche_core::{FlecheConfig, FlecheSystem};
use fleche_gpu::{DeviceSpec, DramSpec, Gpu};
use fleche_store::api::EmbeddingCacheSystem;
use fleche_store::{CpuStore, RemoteSpec, TieredStore};
use fleche_workload::{spec, TraceGenerator};

fn tiered_system(dram_fraction: f64, cache_fraction: f64) -> (FlecheSystem, Gpu) {
    let ds = spec::synthetic(8, 5_000, 16, -1.3);
    let store = TieredStore::new(
        &ds,
        DramSpec::xeon_6252(),
        RemoteSpec::datacenter(),
        dram_fraction,
    );
    (
        FlecheSystem::with_tiered_store(&ds, store, FlecheConfig::full(cache_fraction)),
        Gpu::new(DeviceSpec::t4()),
    )
}

#[test]
fn tiered_mode_serves_ground_truth() {
    let ds = spec::synthetic(8, 5_000, 16, -1.3);
    let truth = CpuStore::new(&ds, DramSpec::xeon_6252());
    let (mut sys, mut gpu) = tiered_system(0.3, 0.05);
    let mut gen = TraceGenerator::new(&ds);
    for _ in 0..5 {
        let batch = gen.next_batch(96);
        let out = sys.query_batch(&mut gpu, &batch);
        let mut k = 0;
        for (t, ids) in batch.table_ids.iter().enumerate() {
            for &id in ids {
                assert_eq!(out.rows[k], truth.read(t as u16, id), "row {k}");
                k += 1;
            }
        }
    }
    let stats = sys.tiered_store().expect("tiered mode").stats();
    assert!(stats.remote_fetches > 0, "cold keys must come from remote");
    assert!(stats.dram_hits > 0, "warm keys must come from DRAM");
}

#[test]
fn dram_evictions_invalidate_unified_pointers() {
    // Tiny DRAM layer forces constant eviction; pointers must never be
    // left dangling (every returned row still matches ground truth) and
    // invalidations must actually occur.
    let ds = spec::synthetic(8, 5_000, 16, -1.3);
    let truth = CpuStore::new(&ds, DramSpec::xeon_6252());
    let (mut sys, mut gpu) = tiered_system(0.02, 0.02);
    let mut gen = TraceGenerator::new(&ds);
    for _ in 0..25 {
        let batch = gen.next_batch(256);
        let out = sys.query_batch(&mut gpu, &batch);
        let mut k = 0;
        for (t, ids) in batch.table_ids.iter().enumerate() {
            for &id in ids {
                assert_eq!(out.rows[k], truth.read(t as u16, id));
                k += 1;
            }
        }
    }
    let stats = sys.tiered_store().expect("tiered mode").stats();
    assert!(
        stats.dram_evictions > 0,
        "a 2% DRAM layer must evict under this trace"
    );
    // The unified index stays bounded and consistent (the invariant the
    // invalidation protocol maintains).
    assert!(sys.cache().unified_count() <= sys.cache().unified_target().max(1));
}

#[test]
fn flat_mode_reports_no_tiered_store() {
    let ds = spec::synthetic(4, 1_000, 8, -1.2);
    let store = CpuStore::new(&ds, DramSpec::xeon_6252());
    let sys = FlecheSystem::new(&ds, store, FlecheConfig::full(0.05));
    assert!(sys.tiered_store().is_none());
    assert!(sys.store().is_some());
    let (tiered, _) = tiered_system(0.5, 0.05);
    assert!(tiered.store().is_none());
    assert!(tiered.tiered_store().is_some());
}

#[test]
fn smaller_dram_layer_is_slower() {
    // More remote fetches -> higher embedding latency.
    let run = |dram_fraction: f64| {
        let ds = spec::synthetic(8, 5_000, 16, -1.3);
        let (mut sys, mut gpu) = tiered_system(dram_fraction, 0.05);
        let mut gen = TraceGenerator::new(&ds);
        for _ in 0..8 {
            sys.query_batch(&mut gpu, &gen.next_batch(256));
        }
        sys.reset_stats();
        let mut wall = fleche_gpu::Ns::ZERO;
        for _ in 0..4 {
            wall += sys.query_batch(&mut gpu, &gen.next_batch(256)).stats.wall;
        }
        wall
    };
    let big = run(0.6);
    let tiny = run(0.01);
    assert!(
        tiny > big,
        "1% DRAM layer ({tiny}) should be slower than 60% ({big})"
    );
}
