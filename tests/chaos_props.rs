//! Property tests for the failure-handling machinery: epoch-based
//! reclamation must keep decoupled copies safe while eviction and
//! fault-induced quarantines retire slots underneath them, the tiered
//! store's retry/fallback path must never surface garbage bytes, and the
//! breaker/staleness hysteresis state machines must never oscillate on
//! constant input and must trip monotonically in the failure rate.

use fleche_chaos::{
    BreakerConfig, BreakerState, CircuitBreaker, FaultPlan, RetryPolicy, StalenessConfig,
    StalenessPolicy,
};
use fleche_coding::{FlatKey, FlatKeyCodec, SizeAwareCodec};
use fleche_core::{CacheAnswer, FlatCache, FlatCacheConfig, FlecheConfig, FlecheSystem};
use fleche_gpu::{DeviceSpec, DramSpec, Gpu, Ns};
use fleche_index::EpochGuard;
use fleche_store::{CpuStore, EmbeddingCacheSystem, RemoteSpec, TieredStore};
use fleche_workload::{spec, TraceGenerator};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const DIM: usize = 8;

/// Deterministic per-key payload so a re-insert of the same key writes
/// byte-identical data: any change observed through a pinned reader can
/// only come from slot reuse, never from a legitimate refresh.
fn value_of(t: u16, f: u64) -> Vec<f32> {
    (0..DIM)
        .map(|i| t as f32 * 4096.0 + f as f32 * 2.0 + i as f32 * 0.25)
        .collect()
}

/// A decoupled copy in flight: pinned at capture time, verified (then
/// unpinned) `due` rounds later — the delay standing in for the extra
/// wall time a fault-induced retry adds between address capture and the
/// actual reads.
struct InFlight {
    guard: EpochGuard,
    captured: Vec<(FlatKey, u16, u32, Vec<f32>)>,
    due: usize,
}

#[derive(Clone, Debug)]
struct Round {
    inserts: Vec<(u16, u64)>,
    start_reader: bool,
    reader_delay: usize,
    /// Index into the newest reader's captured set to quarantine (the
    /// checksum-failure path retiring a slot while the copy is pinned).
    quarantine_nth: Option<usize>,
}

fn rounds_strategy() -> impl Strategy<Value = Vec<Round>> {
    prop::collection::vec(
        (
            prop::collection::vec((0u16..4, 0u64..500), 1..12),
            any::<bool>(),
            0usize..5,
            prop_oneof![Just(None), (0usize..8).prop_map(Some)],
        )
            .prop_map(
                |(inserts, start_reader, reader_delay, quarantine_nth)| Round {
                    inserts,
                    start_reader,
                    reader_delay,
                    quarantine_nth,
                },
            ),
        4..32,
    )
}

fn verify_and_unpin(cache: &mut FlatCache, reader: InFlight) -> Result<(), TestCaseError> {
    for (key, class, slot, expected) in &reader.captured {
        let got = cache.read_hit(*class, *slot);
        prop_assert_eq!(
            got,
            expected.as_slice(),
            "decoupled copy of key {:?} at ({}, {}) observed reused bytes",
            key,
            class,
            slot
        );
    }
    cache.release_reader(reader.guard);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary interleavings of inserts, capacity evictions,
    /// checksum quarantines, and epoch advances, a pinned decoupled copy
    /// always reads exactly the bytes present at capture time: retired
    /// slots are never reclaimed and reused while a reader can see them.
    #[test]
    fn decoupled_copies_never_observe_reused_slots(rounds in rounds_strategy()) {
        let ds = spec::synthetic(4, 500, DIM as u32, -1.2);
        let corpora: Vec<u64> = ds.tables.iter().map(|t| t.corpus).collect();
        let codec = SizeAwareCodec::new(24, &corpora);
        for t in 0..4u16 {
            prop_assert!(codec.table_code(t).lossless, "collisions would break the byte model");
        }
        // Tiny pool (64 value slots) so eviction churns constantly.
        let mut cache = FlatCache::new(
            &ds,
            (DIM * 4 * 64) as u64,
            FlatCacheConfig { admission_probability: 1.0, ..FlatCacheConfig::default() },
        );
        let mut stamp = 0u32;
        let mut inserted: Vec<(u16, u64)> = Vec::new();
        let mut in_flight: Vec<InFlight> = Vec::new();
        let total = rounds.len();
        for (round_no, round) in rounds.into_iter().enumerate() {
            for (t, f) in round.inserts {
                stamp += 1;
                if cache.insert_value(t, codec.encode(t, f), &value_of(t, f), stamp).0.is_some() {
                    inserted.push((t, f));
                }
            }
            if round.start_reader && !inserted.is_empty() {
                // Capture the *oldest* inserted keys: the ones eviction is
                // most likely to retire while this copy is still pinned.
                let guard = cache.pin_reader();
                let mut captured = Vec::new();
                for &(t, f) in inserted.iter().take(8) {
                    let key = codec.encode(t, f);
                    if let CacheAnswer::Hit { class, slot } = cache.lookup(key, 0).0 {
                        captured.push((key, class, slot, value_of(t, f)));
                    }
                }
                in_flight.push(InFlight { guard, captured, due: round_no + round.reader_delay });
            }
            if let (Some(nth), Some(reader)) = (round.quarantine_nth, in_flight.last()) {
                // The fault path: a checksum mismatch quarantines the slot
                // (index removal + retire) while the copy is in flight.
                if let Some(&(key, class, slot, _)) = reader.captured.get(nth) {
                    if matches!(cache.lookup(key, 0).0, CacheAnswer::Hit { class: c, slot: s } if c == class && s == slot) {
                        cache.quarantine(key, class, slot);
                    }
                }
            }
            if cache.needs_eviction() {
                cache.evict_pass();
            }
            cache.end_batch();
            let mut still_pinned = Vec::new();
            for reader in in_flight {
                if reader.due <= round_no {
                    verify_and_unpin(&mut cache, reader)?;
                } else {
                    still_pinned.push(reader);
                }
            }
            in_flight = still_pinned;
            let _ = total;
        }
        // Drain every copy still in flight, then check liveness: with all
        // readers gone, two epoch advances must actually reclaim retired
        // slots (utilization falls back under control).
        for reader in in_flight.drain(..) {
            verify_and_unpin(&mut cache, reader)?;
        }
        if cache.needs_eviction() {
            cache.evict_pass();
        }
        cache.end_batch();
        cache.end_batch();
        prop_assert!(
            cache.effective_utilization() <= 1.0,
            "retired slots were never reclaimed after all readers unpinned: {}",
            cache.effective_utilization()
        );
    }

    /// End to end through the faulty tiered path: whatever combination of
    /// timeouts, retries, hedges, and stale fallbacks a seed produces, a
    /// served row is always byte-exact truth or the zero fill of an
    /// admitted failure — never stale-pointer garbage.
    #[test]
    fn faulty_tiered_system_never_serves_garbage(
        seed in 0u64..512,
        fault_rate in 0.0f64..0.9,
        batches in 2usize..6,
    ) {
        let ds = spec::synthetic(4, 3_000, DIM as u32, -1.1);
        let truth = CpuStore::new(&ds, DramSpec::xeon_6252());
        let mut plan = FaultPlan::quiet(seed);
        plan.remote.fetch_failure_rate = fault_rate;
        let mut store = TieredStore::new(&ds, DramSpec::xeon_6252(), RemoteSpec::datacenter(), 0.1);
        store.set_fault_injector(Some(plan.remote_injector()));
        store.set_retry_policy(RetryPolicy::standard());
        store.set_stale_serve(true);
        let mut sys = FlecheSystem::with_tiered_store(
            &ds,
            store,
            FlecheConfig { checksums: true, ..FlecheConfig::full(0.05) },
        );
        let mut gpu = Gpu::new(DeviceSpec::t4());
        let mut gen = TraceGenerator::new(&ds);
        for _ in 0..batches {
            let batch = gen.next_batch(64);
            let out = sys.query_batch(&mut gpu, &batch);
            let mut k = 0;
            for (t, ids) in batch.table_ids.iter().enumerate() {
                for &id in ids {
                    let row = &out.rows[k];
                    let tv = truth.read(t as u16, id);
                    prop_assert!(
                        row == &tv || row.iter().all(|&v| v == 0.0),
                        "table {} id {} served neither truth nor zeros under fault rate {}",
                        t, id, fault_rate
                    );
                    k += 1;
                }
            }
        }
    }
}

/// Deterministic per-index uniform draw in `[0, 1)` (split-mix hash), so
/// a higher failure rate fails a strict superset of the indices a lower
/// rate does — the coupling the monotonicity property relies on.
fn uniform_at(seed: u64, i: u64) -> f64 {
    let mut x = seed
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(i.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

fn breaker_config_strategy() -> impl Strategy<Value = BreakerConfig> {
    (0.1f64..1.0, 2u32..12, 0u32..32, 1u32..5).prop_map(
        |(failure_threshold, min_samples, extra_window, probes_to_close)| BreakerConfig {
            failure_threshold,
            min_samples,
            window: min_samples + extra_window,
            cooldown: Ns::from_ms(1.0),
            probes_to_close,
        },
    )
}

/// Feeds `steps` outcomes where index `i` fails iff `uniform_at(seed, i)
/// < rate`, returning the index of the breaker's first trip.
fn first_trip(config: &BreakerConfig, seed: u64, rate: f64, steps: u64) -> Option<u64> {
    let mut b = CircuitBreaker::new(config.clone());
    for i in 0..steps {
        b.record(Ns::from_us(10.0) * i as f64, uniform_at(seed, i) < rate);
        if b.trips() > 0 {
            return Some(i);
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A breaker fed only successes never leaves the closed state, no
    /// matter the tuning: the hysteresis machinery cannot self-trigger.
    #[test]
    fn breaker_never_opens_without_failures(
        config in breaker_config_strategy(),
        steps in 16u64..400,
    ) {
        let mut b = CircuitBreaker::new(config);
        for i in 0..steps {
            let now = Ns::from_us(50.0) * i as f64;
            prop_assert!(b.allow(now), "closed breaker must admit traffic");
            b.record(now, false);
        }
        prop_assert_eq!(b.trips(), 0);
        let t = b.transitions_at(Ns::from_us(50.0) * steps as f64);
        prop_assert_eq!((t.opened, t.half_opened, t.closed), (0, 0, 0));
        prop_assert_eq!(t.time_open, Ns::ZERO);
    }

    /// A breaker fed only failures trips and never recovers: every
    /// half-open probe fails and re-opens, so the closed-recovery count
    /// stays zero — the state machine does not oscillate back through
    /// closed on a constant failure rate.
    #[test]
    fn breaker_never_recloses_under_constant_failure(
        config in breaker_config_strategy(),
        steps in 64u64..256,
        // Gaps straddle the 1ms cooldown so open phases genuinely expire
        // into half-open probes along the way.
        gap_us in 200.0f64..2_000.0,
    ) {
        let mut b = CircuitBreaker::new(config.clone());
        for i in 0..steps {
            let now = Ns::from_us(gap_us) * i as f64;
            if b.allow(now) {
                b.record(now, true);
            }
        }
        let t = b.transitions_at(Ns::from_us(gap_us) * steps as f64);
        prop_assert!(t.opened >= 1, "enough failures must trip the breaker");
        prop_assert_eq!(t.closed, 0, "probes all fail; the breaker must never re-close");
        prop_assert_ne!(b.state_at(Ns::from_us(gap_us) * steps as f64), BreakerState::Closed);
    }

    /// Time-to-first-trip is monotone in the failure rate: on coupled
    /// outcome streams (a higher rate fails a superset of indices), a
    /// breaker facing more failures never trips later.
    #[test]
    fn breaker_first_trip_is_monotone_in_failure_rate(
        config in breaker_config_strategy(),
        seed in any::<u64>(),
        r1 in 0.0f64..1.0,
        r2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let steps = 512u64;
        let at_lo = first_trip(&config, seed, lo, steps);
        let at_hi = first_trip(&config, seed, hi, steps);
        if let Some(lo_trip) = at_lo {
            let hi_trip = at_hi.expect("superset of failures must also trip");
            prop_assert!(
                hi_trip <= lo_trip,
                "rate {hi} tripped at {hi_trip}, after rate {lo} at {lo_trip}"
            );
        }
    }

    /// The staleness policy never oscillates on constant lag: whatever
    /// the bounds and the lag, an arbitrarily long constant stream causes
    /// at most one mode transition in total.
    #[test]
    fn staleness_policy_constant_lag_transitions_at_most_once(
        max_lag in 1u64..24,
        resume_gap in 0u64..24,
        lag in 0u64..48,
        steps in 1usize..200,
    ) {
        let config = StalenessConfig {
            max_lag,
            resume_lag: max_lag.saturating_sub(resume_gap),
        };
        let mut p = StalenessPolicy::new(config);
        for _ in 0..steps {
            p.observe(lag);
        }
        prop_assert!(
            p.entries() + p.exits() <= 1,
            "constant lag {lag} oscillated: {} entries, {} exits",
            p.entries(),
            p.exits()
        );
    }

    /// Inside the hysteresis band (`resume_lag < lag <= max_lag`) the
    /// mode is frozen: after any warm-up history, in-band observations
    /// never move the policy in either direction.
    #[test]
    fn staleness_policy_holds_state_inside_the_band(
        max_lag in 2u64..24,
        resume_gap in 1u64..24,
        prefix in prop::collection::vec(0u64..48, 0..32),
        in_band_steps in 1usize..64,
    ) {
        let resume_lag = max_lag.saturating_sub(resume_gap);
        let config = StalenessConfig { max_lag, resume_lag };
        let mut p = StalenessPolicy::new(config);
        for lag in prefix {
            p.observe(lag);
        }
        let (entries, exits, degraded) = (p.entries(), p.exits(), p.degraded());
        // The band is non-empty because resume < max.
        let band_lag = resume_lag + 1;
        prop_assert!(band_lag > resume_lag && band_lag <= max_lag);
        for _ in 0..in_band_steps {
            prop_assert_eq!(p.observe(band_lag), degraded, "band must not flip the mode");
        }
        prop_assert_eq!(p.entries(), entries);
        prop_assert_eq!(p.exits(), exits);
    }
}
