//! Property tests for the failure-handling machinery: epoch-based
//! reclamation must keep decoupled copies safe while eviction and
//! fault-induced quarantines retire slots underneath them, and the
//! tiered store's retry/fallback path must never surface garbage bytes.

use fleche_chaos::{FaultPlan, RetryPolicy};
use fleche_coding::{FlatKey, FlatKeyCodec, SizeAwareCodec};
use fleche_core::{CacheAnswer, FlatCache, FlatCacheConfig, FlecheConfig, FlecheSystem};
use fleche_gpu::{DeviceSpec, DramSpec, Gpu};
use fleche_index::EpochGuard;
use fleche_store::{CpuStore, EmbeddingCacheSystem, RemoteSpec, TieredStore};
use fleche_workload::{spec, TraceGenerator};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

const DIM: usize = 8;

/// Deterministic per-key payload so a re-insert of the same key writes
/// byte-identical data: any change observed through a pinned reader can
/// only come from slot reuse, never from a legitimate refresh.
fn value_of(t: u16, f: u64) -> Vec<f32> {
    (0..DIM)
        .map(|i| t as f32 * 4096.0 + f as f32 * 2.0 + i as f32 * 0.25)
        .collect()
}

/// A decoupled copy in flight: pinned at capture time, verified (then
/// unpinned) `due` rounds later — the delay standing in for the extra
/// wall time a fault-induced retry adds between address capture and the
/// actual reads.
struct InFlight {
    guard: EpochGuard,
    captured: Vec<(FlatKey, u16, u32, Vec<f32>)>,
    due: usize,
}

#[derive(Clone, Debug)]
struct Round {
    inserts: Vec<(u16, u64)>,
    start_reader: bool,
    reader_delay: usize,
    /// Index into the newest reader's captured set to quarantine (the
    /// checksum-failure path retiring a slot while the copy is pinned).
    quarantine_nth: Option<usize>,
}

fn rounds_strategy() -> impl Strategy<Value = Vec<Round>> {
    prop::collection::vec(
        (
            prop::collection::vec((0u16..4, 0u64..500), 1..12),
            any::<bool>(),
            0usize..5,
            prop_oneof![Just(None), (0usize..8).prop_map(Some)],
        )
            .prop_map(
                |(inserts, start_reader, reader_delay, quarantine_nth)| Round {
                    inserts,
                    start_reader,
                    reader_delay,
                    quarantine_nth,
                },
            ),
        4..32,
    )
}

fn verify_and_unpin(cache: &mut FlatCache, reader: InFlight) -> Result<(), TestCaseError> {
    for (key, class, slot, expected) in &reader.captured {
        let got = cache.read_hit(*class, *slot);
        prop_assert_eq!(
            got,
            expected.as_slice(),
            "decoupled copy of key {:?} at ({}, {}) observed reused bytes",
            key,
            class,
            slot
        );
    }
    cache.release_reader(reader.guard);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under arbitrary interleavings of inserts, capacity evictions,
    /// checksum quarantines, and epoch advances, a pinned decoupled copy
    /// always reads exactly the bytes present at capture time: retired
    /// slots are never reclaimed and reused while a reader can see them.
    #[test]
    fn decoupled_copies_never_observe_reused_slots(rounds in rounds_strategy()) {
        let ds = spec::synthetic(4, 500, DIM as u32, -1.2);
        let corpora: Vec<u64> = ds.tables.iter().map(|t| t.corpus).collect();
        let codec = SizeAwareCodec::new(24, &corpora);
        for t in 0..4u16 {
            prop_assert!(codec.table_code(t).lossless, "collisions would break the byte model");
        }
        // Tiny pool (64 value slots) so eviction churns constantly.
        let mut cache = FlatCache::new(
            &ds,
            (DIM * 4 * 64) as u64,
            FlatCacheConfig { admission_probability: 1.0, ..FlatCacheConfig::default() },
        );
        let mut stamp = 0u32;
        let mut inserted: Vec<(u16, u64)> = Vec::new();
        let mut in_flight: Vec<InFlight> = Vec::new();
        let total = rounds.len();
        for (round_no, round) in rounds.into_iter().enumerate() {
            for (t, f) in round.inserts {
                stamp += 1;
                if cache.insert_value(t, codec.encode(t, f), &value_of(t, f), stamp).0.is_some() {
                    inserted.push((t, f));
                }
            }
            if round.start_reader && !inserted.is_empty() {
                // Capture the *oldest* inserted keys: the ones eviction is
                // most likely to retire while this copy is still pinned.
                let guard = cache.pin_reader();
                let mut captured = Vec::new();
                for &(t, f) in inserted.iter().take(8) {
                    let key = codec.encode(t, f);
                    if let CacheAnswer::Hit { class, slot } = cache.lookup(key, 0).0 {
                        captured.push((key, class, slot, value_of(t, f)));
                    }
                }
                in_flight.push(InFlight { guard, captured, due: round_no + round.reader_delay });
            }
            if let (Some(nth), Some(reader)) = (round.quarantine_nth, in_flight.last()) {
                // The fault path: a checksum mismatch quarantines the slot
                // (index removal + retire) while the copy is in flight.
                if let Some(&(key, class, slot, _)) = reader.captured.get(nth) {
                    if matches!(cache.lookup(key, 0).0, CacheAnswer::Hit { class: c, slot: s } if c == class && s == slot) {
                        cache.quarantine(key, class, slot);
                    }
                }
            }
            if cache.needs_eviction() {
                cache.evict_pass();
            }
            cache.end_batch();
            let mut still_pinned = Vec::new();
            for reader in in_flight {
                if reader.due <= round_no {
                    verify_and_unpin(&mut cache, reader)?;
                } else {
                    still_pinned.push(reader);
                }
            }
            in_flight = still_pinned;
            let _ = total;
        }
        // Drain every copy still in flight, then check liveness: with all
        // readers gone, two epoch advances must actually reclaim retired
        // slots (utilization falls back under control).
        for reader in in_flight.drain(..) {
            verify_and_unpin(&mut cache, reader)?;
        }
        if cache.needs_eviction() {
            cache.evict_pass();
        }
        cache.end_batch();
        cache.end_batch();
        prop_assert!(
            cache.effective_utilization() <= 1.0,
            "retired slots were never reclaimed after all readers unpinned: {}",
            cache.effective_utilization()
        );
    }

    /// End to end through the faulty tiered path: whatever combination of
    /// timeouts, retries, hedges, and stale fallbacks a seed produces, a
    /// served row is always byte-exact truth or the zero fill of an
    /// admitted failure — never stale-pointer garbage.
    #[test]
    fn faulty_tiered_system_never_serves_garbage(
        seed in 0u64..512,
        fault_rate in 0.0f64..0.9,
        batches in 2usize..6,
    ) {
        let ds = spec::synthetic(4, 3_000, DIM as u32, -1.1);
        let truth = CpuStore::new(&ds, DramSpec::xeon_6252());
        let mut plan = FaultPlan::quiet(seed);
        plan.remote.fetch_failure_rate = fault_rate;
        let mut store = TieredStore::new(&ds, DramSpec::xeon_6252(), RemoteSpec::datacenter(), 0.1);
        store.set_fault_injector(Some(plan.remote_injector()));
        store.set_retry_policy(RetryPolicy::standard());
        store.set_stale_serve(true);
        let mut sys = FlecheSystem::with_tiered_store(
            &ds,
            store,
            FlecheConfig { checksums: true, ..FlecheConfig::full(0.05) },
        );
        let mut gpu = Gpu::new(DeviceSpec::t4());
        let mut gen = TraceGenerator::new(&ds);
        for _ in 0..batches {
            let batch = gen.next_batch(64);
            let out = sys.query_batch(&mut gpu, &batch);
            let mut k = 0;
            for (t, ids) in batch.table_ids.iter().enumerate() {
                for &id in ids {
                    let row = &out.rows[k];
                    let tv = truth.read(t as u16, id);
                    prop_assert!(
                        row == &tv || row.iter().all(|&v| v == 0.0),
                        "table {} id {} served neither truth nor zeros under fault rate {}",
                        t, id, fault_rate
                    );
                    k += 1;
                }
            }
        }
    }
}
