//! Property-based tests on the checkpoint image format and the
//! flat-cache restore path: encoding round-trips every embedding
//! bit-identically (including non-finite float payloads), and an image
//! with any single byte flipped — header, entry stream, or trailer — is
//! always rejected before the cache is touched.

use fleche_coding::{FlatKeyCodec, SizeAwareCodec};
use fleche_core::{CacheAnswer, CacheSnapshot, FlatCache, FlatCacheConfig, SnapshotEntry};
use fleche_workload::spec;
use proptest::prelude::*;

/// Arbitrary entries with payloads drawn from the full 32-bit pattern
/// space (NaNs and infinities included — a checkpoint must not care).
fn entries_strategy() -> impl Strategy<Value = Vec<SnapshotEntry>> {
    prop::collection::vec(
        (
            any::<u64>(),
            any::<u16>(),
            any::<u32>(),
            any::<u64>(),
            prop::collection::vec(any::<u32>().prop_map(f32::from_bits), 1..24),
        )
            .prop_map(|(key, class, stamp, version, value)| SnapshotEntry {
                key,
                class,
                stamp,
                version,
                value,
            }),
        0..40,
    )
}

fn bits(values: &[f32]) -> Vec<u32> {
    values.iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snapshot_round_trips_arbitrary_entries(entries in entries_strategy()) {
        let snap = CacheSnapshot::from_entries(&entries);
        let decoded = snap.decode().expect("fresh image decodes");
        prop_assert_eq!(decoded.len(), entries.len());
        for (d, e) in decoded.iter().zip(&entries) {
            prop_assert_eq!(d.key, e.key);
            prop_assert_eq!(d.class, e.class);
            prop_assert_eq!(d.stamp, e.stamp);
            // Bit-level equality: `==` on f32 would reject NaN payloads
            // that round-tripped perfectly.
            prop_assert_eq!(bits(&d.value), bits(&e.value));
        }
    }

    #[test]
    fn any_flipped_byte_is_rejected(
        entries in entries_strategy(),
        offset_seed in any::<u64>(),
    ) {
        let mut snap = CacheSnapshot::from_entries(&entries);
        let len = snap.byte_len();
        prop_assert!(len > 0);
        let offset = offset_seed % len;
        prop_assert!(snap.corrupt_byte(offset), "offset in bounds");
        prop_assert!(
            snap.decode().is_err(),
            "byte {offset} of {len} flipped but the image decoded"
        );
    }

    #[test]
    fn restore_round_trips_embeddings_bit_identically(
        keys in prop::collection::vec((0u16..4, 0u64..500), 1..120),
        payload in prop::collection::vec(any::<u32>().prop_map(f32::from_bits), 8),
    ) {
        let ds = spec::synthetic(4, 500, 8, -1.2);
        let corpora: Vec<u64> = ds.tables.iter().map(|t| t.corpus).collect();
        let codec = SizeAwareCodec::new(24, &corpora);
        let config = FlatCacheConfig {
            admission_probability: 1.0,
            ..FlatCacheConfig::default()
        };
        // Big enough that nothing inserted here ever faces eviction.
        let mut cache = FlatCache::new(&ds, 8 * 4 * 1024, config);
        for (i, &(t, f)) in keys.iter().enumerate() {
            let value: Vec<f32> = payload
                .iter()
                .enumerate()
                .map(|(j, &p)| if j == 0 { (t as f32) + (f as f32) } else { p })
                .collect();
            cache.insert_value(t, codec.encode(t, f), &value, i as u32);
            cache.end_batch();
        }
        let snap = cache.snapshot();

        let mut fresh = FlatCache::new(&ds, 8 * 4 * 1024, config);
        let report = fresh.restore(&snap).expect("intact image restores");
        prop_assert_eq!(report.bypassed, 0);
        for e in snap.decode().expect("intact") {
            match fresh.lookup(fleche_coding::FlatKey(e.key), u32::MAX).0 {
                CacheAnswer::Hit { class, slot } => {
                    prop_assert_eq!(bits(fresh.read_hit(class, slot)), bits(&e.value));
                }
                other => prop_assert!(false, "restored key {} missing: {other:?}", e.key),
            }
        }
    }

    #[test]
    fn corrupt_image_never_mutates_the_cache(
        entries in entries_strategy(),
        offset_seed in any::<u64>(),
    ) {
        let mut snap = CacheSnapshot::from_entries(&entries);
        let offset = offset_seed % snap.byte_len();
        prop_assert!(snap.corrupt_byte(offset));
        let ds = spec::synthetic(4, 500, 8, -1.2);
        let mut cache = FlatCache::new(&ds, 8 * 4 * 256, FlatCacheConfig::default());
        prop_assert!(cache.restore(&snap).is_err());
        prop_assert_eq!(cache.len(), 0, "rejected image must not touch the cache");
    }
}
