//! Property tests for the concurrent serving front-end: the micro-batcher
//! must partition its input exactly (no drop, no duplicate) while holding
//! the logical-time latency budget, and `serve_concurrent` with a single
//! worker must stay bit-identical to the serial `serve` loop across
//! randomized server configurations.

use fleche_core::{FlecheConfig, FlecheSystem};
use fleche_gpu::{DeviceSpec, DramSpec, Gpu, Ns};
use fleche_model::{
    serve, serve_concurrent, ConcurrentConfig, DenseModel, InferenceEngine, MicroBatcher,
    MicroBatcherConfig, ModelMode, ServerConfig,
};
use fleche_store::CpuStore;
use fleche_workload::{spec, TraceGenerator};
use proptest::prelude::*;

/// Sorted Poisson-ish arrival sequence in logical nanoseconds, with
/// occasional bursts (gap 0) to exercise seal-on-full batches.
fn arrivals_strategy() -> impl Strategy<Value = Vec<(u64, Ns)>> {
    prop::collection::vec((0u8..5, 1u32..200_000), 0..400).prop_map(|gaps| {
        let mut t = 1_000_000.0f64;
        gaps.into_iter()
            .enumerate()
            .map(|(seq, (burst, gap))| {
                // burst==0 keeps the previous timestamp (simultaneous
                // arrivals); otherwise advance by the drawn gap.
                if burst != 0 {
                    t += gap as f64;
                }
                (seq as u64, Ns(t))
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every arrival lands in exactly one batch or the shed list; batches
    /// respect `max_batch`; members stay in arrival order.
    #[test]
    fn micro_batcher_partitions_exactly(
        arrivals in arrivals_strategy(),
        max_batch in 1usize..64,
        linger_us in 1u32..2_000,
        deadline_us in prop_oneof![Just(None), (50u32..5_000).prop_map(Some)],
    ) {
        let cfg = MicroBatcherConfig {
            max_batch,
            linger: Ns::from_us(linger_us as f64),
            deadline: deadline_us.map(|d| Ns::from_us(d as f64)),
        };
        let plan = MicroBatcher::plan(&arrivals, &cfg);
        let mut seen: Vec<(u64, Ns)> = Vec::new();
        for b in &plan.batches {
            prop_assert!(!b.members.is_empty());
            prop_assert!(b.members.len() <= max_batch);
            seen.extend(b.members.iter().copied());
        }
        seen.extend(plan.shed.iter().copied());
        seen.sort_by_key(|&(seq, _)| seq);
        prop_assert_eq!(seen.len(), arrivals.len());
        for (got, want) in seen.iter().zip(arrivals.iter()) {
            prop_assert_eq!(got.0, want.0);
            prop_assert_eq!(got.1.as_ns().to_bits(), want.1.as_ns().to_bits());
        }
    }

    /// The latency budget holds in logical time: no batch seals later
    /// than its first member's arrival plus the linger, unless it sealed
    /// early because it filled — and a full batch seals at its last
    /// member's arrival.
    #[test]
    fn micro_batcher_holds_latency_budget(
        arrivals in arrivals_strategy(),
        max_batch in 1usize..64,
        linger_us in 1u32..2_000,
    ) {
        let linger = Ns::from_us(linger_us as f64);
        let cfg = MicroBatcherConfig { max_batch, linger, deadline: None };
        let plan = MicroBatcher::plan(&arrivals, &cfg);
        prop_assert!(plan.shed.is_empty());
        for b in &plan.batches {
            let first = b.members[0].1;
            let last = b.members[b.members.len() - 1].1;
            prop_assert!(b.seal >= last);
            if b.members.len() == max_batch {
                prop_assert!(b.seal <= Ns(first.as_ns() + linger.as_ns()));
            } else {
                prop_assert_eq!(
                    b.seal.as_ns().to_bits(),
                    (first.as_ns() + linger.as_ns()).to_bits()
                );
            }
        }
    }

    /// Shed decisions are exactly the plan-time deadline test: a request
    /// is shed iff its batch would have sealed more than `deadline`
    /// after it arrived.
    #[test]
    fn micro_batcher_sheds_only_past_deadline(
        arrivals in arrivals_strategy(),
        max_batch in 1usize..64,
        linger_us in 1u32..2_000,
        deadline_us in 50u32..5_000,
    ) {
        let deadline = Ns::from_us(deadline_us as f64);
        let cfg = MicroBatcherConfig {
            max_batch,
            linger: Ns::from_us(linger_us as f64),
            deadline: Some(deadline),
        };
        let plan = MicroBatcher::plan(&arrivals, &cfg);
        for b in &plan.batches {
            for &(_, arr) in &b.members {
                prop_assert!(b.seal.as_ns() - arr.as_ns() <= deadline.as_ns());
            }
        }
    }
}

fn build(_worker: usize) -> (InferenceEngine<FlecheSystem>, TraceGenerator) {
    let ds = spec::synthetic(4, 4_000, 8, -1.2);
    let store = CpuStore::new(&ds, DramSpec::xeon_6252());
    let sys = FlecheSystem::new(&ds, store, FlecheConfig::full(0.1));
    let dense = DenseModel::dcn_paper(InferenceEngine::<FlecheSystem>::concat_dim(&ds));
    (
        InferenceEngine::new(
            Gpu::new(DeviceSpec::t4()),
            sys,
            dense,
            ModelMode::EmbeddingOnly,
            &ds,
        ),
        TraceGenerator::new(&ds),
    )
}

proptest! {
    // Each case runs a full (small) serving session twice; keep the case
    // count modest so the suite stays in test-suite time.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// One concurrent worker with the streaming batcher reproduces the
    /// serial server bit-for-bit across randomized loads, batch caps,
    /// queue bounds, and deadlines.
    #[test]
    fn one_worker_is_bit_identical_to_serial(
        load_k in 100u32..4_000,
        max_batch in 16usize..128,
        requests in 400usize..1_500,
        cap in prop_oneof![Just(None), (64usize..512).prop_map(Some)],
        deadline_us in prop_oneof![Just(None), (200u32..2_000).prop_map(Some)],
    ) {
        let cfg = ServerConfig {
            offered_load: load_k as f64 * 1_000.0,
            max_batch,
            requests,
            warmup_requests: 1_000,
            queue_capacity: cap,
            deadline: deadline_us.map(|d| Ns::from_us(d as f64)),
        };
        let (mut eng, mut gen) = build(0);
        let serial = serve(&mut eng, &mut gen, &cfg);
        let conc = serve_concurrent(build, &ConcurrentConfig::mirror_serial(&cfg, 1));
        let run = &conc.workers[0].run;
        prop_assert_eq!(serial.offered, run.offered);
        prop_assert_eq!(serial.served, run.served);
        prop_assert_eq!(serial.shed_queue, run.shed_queue);
        prop_assert_eq!(serial.shed_deadline, run.shed_deadline);
        prop_assert_eq!(serial.achieved.to_bits(), run.achieved.to_bits());
        prop_assert_eq!(serial.mean_batch.to_bits(), run.mean_batch.to_bits());
        prop_assert_eq!(serial.utilization.to_bits(), run.utilization.to_bits());
        prop_assert_eq!(serial.latency.len(), run.latency.len());
        prop_assert_eq!(
            serial.latency.median().as_ns().to_bits(),
            run.latency.median().as_ns().to_bits()
        );
        prop_assert_eq!(
            serial.latency.p99().as_ns().to_bits(),
            run.latency.p99().as_ns().to_bits()
        );
        prop_assert_eq!(
            serial.latency.mean().as_ns().to_bits(),
            run.latency.mean().as_ns().to_bits()
        );
        prop_assert_eq!(serial.lifetime.hits, run.lifetime.hits);
        prop_assert_eq!(serial.lifetime.misses, run.lifetime.misses);
        prop_assert_eq!(serial.lifetime.batches, run.lifetime.batches);
    }
}
