//! Quickstart: build a Fleche cache over a synthetic dataset, run a few
//! inference batches, and print hit rates and timing.
//!
//! Run with: `cargo run --release -p fleche-bench --example quickstart`

use fleche_core::{FlecheConfig, FlecheSystem};
use fleche_gpu::{DeviceSpec, DramSpec, Gpu};
use fleche_model::{DenseModel, InferenceEngine, ModelMode};
use fleche_store::CpuStore;
use fleche_workload::{spec, TraceGenerator};

fn main() {
    // 1. Pick a workload: 40 embedding tables, 250K features each,
    //    power-law popularity (the paper's synthetic default).
    let dataset = spec::synthetic_default();
    println!(
        "dataset: {} tables, {} total features, {:.1} MB of embeddings",
        dataset.table_count(),
        dataset.total_corpus(),
        dataset.total_param_bytes() as f64 / 1e6
    );

    // 2. Stand up the two-layer hierarchy: a simulated T4 on top, the
    //    CPU-DRAM store underneath, Fleche in between with a 5% cache.
    let gpu = Gpu::new(DeviceSpec::t4());
    let store = CpuStore::new(&dataset, DramSpec::xeon_6252());
    let fleche = FlecheSystem::new(&dataset, store, FlecheConfig::full(0.05));

    // 3. Put a DCN model on top and drive end-to-end inference.
    let dense = DenseModel::dcn_paper(InferenceEngine::<FlecheSystem>::concat_dim(&dataset));
    let mut engine = InferenceEngine::new(gpu, fleche, dense, ModelMode::Full, &dataset);
    let mut gen = TraceGenerator::new(&dataset);

    println!("\nwarming the cache...");
    engine.warmup(&mut gen, 16, 1024);

    println!("measuring 16 batches of 1024...\n");
    let run = engine.measure(&mut gen, 16, 1024);

    println!(
        "throughput:      {:.0} inferences/sec (end-to-end, simulated)",
        run.throughput()
    );
    println!(
        "embedding only:  {:.0} inferences/sec",
        run.embedding_throughput()
    );
    println!(
        "latency:         median {} / p99 {}",
        run.total.median(),
        run.total.p99()
    );
    println!(
        "cache:           {:.1}% hit rate over {} unique keys",
        run.lifetime.hit_rate() * 100.0,
        run.lifetime.unique_keys
    );
    println!(
        "unified index:   {} location hits served from GPU",
        run.lifetime.unified_hits
    );
}
