//! Flat-key coding playground: compare the fixed-length (Kraken-style)
//! codec with Fleche's size-aware codec on a heterogeneous table mix —
//! collisions, key-space utilization, and the accuracy (AUC) consequence.
//!
//! Run with: `cargo run --release -p fleche-bench --example coding_playground`

use fleche_coding::{measure_collisions, FixedLenCodec, FlatKeyCodec, SizeAwareCodec};
use fleche_model::{evaluate_codec, ParamIndexing};
use fleche_workload::{spec, TraceGenerator};
use std::collections::HashMap;

fn main() {
    let dataset = spec::avazu_small_for_tests();
    let corpora: Vec<u64> = dataset.tables.iter().map(|t| t.corpus).collect();
    println!("tables (corpus sizes): {corpora:?}\n");

    // Collect a weighted access census.
    let mut gen = TraceGenerator::new(&dataset);
    let mut accesses: HashMap<(u16, u64), u64> = HashMap::new();
    for _ in 0..40 {
        for (t, id) in gen.next_batch(512).iter_accesses() {
            *accesses.entry((t, id)).or_default() += 1;
        }
    }

    println!(
        "{:>5}  {:>22}  {:>22}",
        "bits", "fixed-length collisions", "size-aware collisions"
    );
    for bits in [12u32, 14, 16, 18, 20] {
        let table_bits = (corpora.len() as f64).log2().ceil() as u32;
        let fixed = FixedLenCodec::new(bits, table_bits, corpora.clone());
        let aware = SizeAwareCodec::new(bits, &corpora);
        let rf = measure_collisions(&fixed, &accesses);
        let ra = measure_collisions(&aware, &accesses);
        println!(
            "{bits:>5}  {:>21.2}%  {:>21.2}%",
            rf.access_collision_rate() * 100.0,
            ra.access_collision_rate() * 100.0
        );
    }

    println!("\nper-table layout of the size-aware codec at 16 bits:");
    let aware = SizeAwareCodec::new(16, &corpora);
    for (t, &corpus) in corpora.iter().enumerate() {
        let code = aware.table_code(t as u16);
        println!(
            "  table {t}: corpus {corpus:>6} -> prefix {:>2} bits, feature space {:>6} ({})",
            code.prefix_bits,
            code.feature_space,
            if code.lossless { "lossless" } else { "lossy" }
        );
    }

    println!("\nAUC consequence (hashed LR on synthetic CTR ground truth):");
    let upper = evaluate_codec(&dataset, ParamIndexing::Identity, 6_000, 2_000, 3);
    println!("  upper bound (no collisions): {upper:.4}");
    for bits in [12u32, 14, 16, 18] {
        let table_bits = (corpora.len() as f64).log2().ceil() as u32;
        let fixed = FixedLenCodec::new(bits, table_bits, corpora.clone());
        let aware = SizeAwareCodec::new(bits, &corpora);
        let a_fixed = evaluate_codec(&dataset, ParamIndexing::Encoded(&fixed), 6_000, 2_000, 3);
        let a_aware = evaluate_codec(&dataset, ParamIndexing::Encoded(&aware), 6_000, 2_000, 3);
        println!("  {bits:>2} bits: fixed {a_fixed:.4}   size-aware {a_aware:.4}");
    }
}
