//! Giant-model serving (paper §5): the model no longer fits in one
//! machine's DRAM, so the CPU-DRAM layer becomes a cache over a remote
//! parameter server. Watch the three-layer hierarchy (GPU HBM -> DRAM ->
//! remote PS) serve traffic, and the unified index stay consistent while
//! the DRAM layer churns.
//!
//! Run with: `cargo run --release -p fleche-bench --example giant_model`

use fleche_core::{FlecheConfig, FlecheSystem};
use fleche_gpu::{DeviceSpec, DramSpec, Gpu};
use fleche_store::api::EmbeddingCacheSystem;
use fleche_store::{RemoteSpec, TieredStore};
use fleche_workload::{spec, TraceGenerator};

fn main() {
    let dataset = spec::synthetic(24, 200_000, 32, -1.3);
    println!(
        "model: {} tables, {} embeddings, {:.1} MB — pretend DRAM only fits ~1%",
        dataset.table_count(),
        dataset.total_corpus(),
        dataset.total_param_bytes() as f64 / 1e6
    );

    let tiered = TieredStore::new(
        &dataset,
        DramSpec::xeon_6252(),
        RemoteSpec::datacenter(),
        0.012, // DRAM holds ~1% of the parameters
    );
    let mut sys = FlecheSystem::with_tiered_store(&dataset, tiered, FlecheConfig::full(0.02));
    let mut gpu = Gpu::new(DeviceSpec::t4());
    let mut gen = TraceGenerator::new(&dataset);

    println!(
        "\n{:<8} {:>12} {:>9} {:>11} {:>12} {:>12}",
        "batch", "latency", "gpu hit", "dram hit", "remote", "evictions"
    );
    for i in 0..60 {
        let s = sys.query_batch(&mut gpu, &gen.next_batch(512)).stats;
        if i % 10 == 9 {
            let t = sys.tiered_store().expect("tiered mode").stats();
            let dram_hit = t.dram_hits as f64 / (t.dram_hits + t.remote_fetches).max(1) as f64;
            println!(
                "{:<8} {:>12} {:>8.1}% {:>10.1}% {:>12} {:>12}",
                i + 1,
                format!("{}", s.wall),
                s.hit_rate() * 100.0,
                dram_hit * 100.0,
                t.remote_fetches,
                t.dram_evictions
            );
        }
    }

    let t = sys.tiered_store().expect("tiered mode").stats();
    println!("\nsteady state:");
    println!("  GPU cache absorbs the hottest keys;");
    println!(
        "  DRAM layer served {} lookups locally, fetched {} remotely,",
        t.dram_hits, t.remote_fetches
    );
    println!(
        "  and evicted {} embeddings — each eviction invalidated any",
        t.dram_evictions
    );
    println!("  unified-index pointer to it, so no lookup ever chased a stale address.");
    println!(
        "  unified entries now on GPU: {}",
        sys.cache().unified_count()
    );
}
