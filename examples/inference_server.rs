//! A recommendation inference "server" loop comparing both cache systems
//! side by side on an Avazu-like workload: the scenario the paper's
//! introduction motivates (examine more candidates within the same SLA).
//!
//! Run with: `cargo run --release -p fleche-bench --example inference_server`

use fleche_baseline::{BaselineConfig, PerTableCacheSystem};
use fleche_core::{FlecheConfig, FlecheSystem};
use fleche_gpu::{DeviceSpec, DramSpec, Gpu};
use fleche_model::{DenseModel, InferenceEngine, ModelMode};
use fleche_store::CpuStore;
use fleche_workload::{spec, TraceGenerator};

const CACHE_FRACTION: f64 = 0.05;
const BATCH: usize = 512;
const SLA_MS: f64 = 10.0;

fn main() {
    let dataset = spec::avazu();
    println!(
        "serving an Avazu-like model: {} embedding tables, {:.1} MB of parameters",
        dataset.table_count(),
        dataset.total_param_bytes() as f64 / 1e6
    );
    println!(
        "cache budget: {CACHE_FRACTION:.0$}% of parameters, batch {BATCH}, SLA {SLA_MS} ms\n",
        0
    );

    // --- Baseline server ---------------------------------------------------
    let store = CpuStore::new(&dataset, DramSpec::xeon_6252());
    let baseline = PerTableCacheSystem::new(
        &dataset,
        store,
        BaselineConfig {
            cache_fraction: CACHE_FRACTION,
            ..BaselineConfig::default()
        },
    );
    let dense = DenseModel::dcn_paper(InferenceEngine::<PerTableCacheSystem>::concat_dim(&dataset));
    let mut base_engine = InferenceEngine::new(
        Gpu::new(DeviceSpec::t4()),
        baseline,
        dense,
        ModelMode::Full,
        &dataset,
    );
    let mut gen = TraceGenerator::new(&dataset);
    base_engine.warmup(&mut gen, 16, BATCH);
    let base = base_engine.measure(&mut gen, 24, BATCH);

    // --- Fleche server ------------------------------------------------------
    let store = CpuStore::new(&dataset, DramSpec::xeon_6252());
    let fleche = FlecheSystem::new(&dataset, store, FlecheConfig::full(CACHE_FRACTION));
    let dense = DenseModel::dcn_paper(InferenceEngine::<FlecheSystem>::concat_dim(&dataset));
    let mut fleche_engine = InferenceEngine::new(
        Gpu::new(DeviceSpec::t4()),
        fleche,
        dense,
        ModelMode::Full,
        &dataset,
    );
    let mut gen = TraceGenerator::new(&dataset);
    fleche_engine.warmup(&mut gen, 16, BATCH);
    let fl = fleche_engine.measure(&mut gen, 24, BATCH);

    // --- Report -------------------------------------------------------------
    println!("{:<22} {:>14} {:>14}", "", "HugeCTR-like", "Fleche");
    println!(
        "{:<22} {:>14.0} {:>14.0}",
        "throughput (inf/s)",
        base.throughput(),
        fl.throughput()
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "median latency",
        format!("{}", base.total.median()),
        format!("{}", fl.total.median())
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "p99 latency",
        format!("{}", base.total.p99()),
        format!("{}", fl.total.p99())
    );
    println!(
        "{:<22} {:>13.1}% {:>13.1}%",
        "cache hit rate",
        base.lifetime.hit_rate() * 100.0,
        fl.lifetime.hit_rate() * 100.0
    );

    // Candidates servable within the SLA: the paper's business argument.
    let per_batch_base = base.total.median().as_ms();
    let per_batch_fleche = fl.total.median().as_ms();
    let cand_base = (SLA_MS / per_batch_base * BATCH as f64) as u64;
    let cand_fleche = (SLA_MS / per_batch_fleche * BATCH as f64) as u64;
    println!(
        "{:<22} {:>14} {:>14}",
        "candidates per SLA", cand_base, cand_fleche
    );
    println!(
        "\nwithin the same {SLA_MS} ms SLA, Fleche examines {:.1}x more candidate items",
        cand_fleche as f64 / cand_base as f64
    );
}
