//! A recommendation inference "server" loop comparing both cache systems
//! side by side on an Avazu-like workload: the scenario the paper's
//! introduction motivates (examine more candidates within the same SLA).
//!
//! Run with: `cargo run --release -p fleche-bench --example inference_server`

use fleche_baseline::{BaselineConfig, PerTableCacheSystem};
use fleche_chaos::{BreakerConfig, StalenessConfig};
use fleche_core::{FlecheConfig, FlecheSystem};
use fleche_gpu::{DeviceSpec, DramSpec, Gpu};
use fleche_model::{DenseModel, InferenceEngine, ModelMode};
use fleche_store::{CpuStore, UpdateStream};
use fleche_workload::{spec, TraceGenerator, WorkloadStats};

const CACHE_FRACTION: f64 = 0.05;
const BATCH: usize = 512;
const SLA_MS: f64 = 10.0;

/// Serving batches in the online-update phase.
const UPDATE_BATCHES: usize = 48;
/// Trainer pushes staged per serving batch.
const PUSHES_PER_BATCH: usize = 96;
/// Push-channel outage window (commits still reach the version ledger,
/// so served rows fall behind and the staleness policy must react).
const OUTAGE: std::ops::Range<usize> = 14..26;

fn main() {
    let dataset = spec::avazu();
    println!(
        "serving an Avazu-like model: {} embedding tables, {:.1} MB of parameters",
        dataset.table_count(),
        dataset.total_param_bytes() as f64 / 1e6
    );
    println!(
        "cache budget: {CACHE_FRACTION:.0$}% of parameters, batch {BATCH}, SLA {SLA_MS} ms\n",
        0
    );

    // --- Baseline server ---------------------------------------------------
    let store = CpuStore::new(&dataset, DramSpec::xeon_6252());
    let baseline = PerTableCacheSystem::new(
        &dataset,
        store,
        BaselineConfig {
            cache_fraction: CACHE_FRACTION,
            ..BaselineConfig::default()
        },
    );
    let dense = DenseModel::dcn_paper(InferenceEngine::<PerTableCacheSystem>::concat_dim(&dataset));
    let mut base_engine = InferenceEngine::new(
        Gpu::new(DeviceSpec::t4()),
        baseline,
        dense,
        ModelMode::Full,
        &dataset,
    );
    let mut gen = TraceGenerator::new(&dataset);
    base_engine.warmup(&mut gen, 16, BATCH);
    let base = base_engine.measure(&mut gen, 24, BATCH);

    // --- Fleche server ------------------------------------------------------
    let store = CpuStore::new(&dataset, DramSpec::xeon_6252());
    let mut cfg = FlecheConfig::full(CACHE_FRACTION);
    cfg.breaker = Some(BreakerConfig::default());
    cfg.staleness = Some(StalenessConfig {
        max_lag: 16,
        resume_lag: 8,
    });
    let fleche = FlecheSystem::new(&dataset, store, cfg);
    let dense = DenseModel::dcn_paper(InferenceEngine::<FlecheSystem>::concat_dim(&dataset));
    let mut fleche_engine = InferenceEngine::new(
        Gpu::new(DeviceSpec::t4()),
        fleche,
        dense,
        ModelMode::Full,
        &dataset,
    );
    let mut gen = TraceGenerator::new(&dataset);
    fleche_engine.warmup(&mut gen, 16, BATCH);
    let fl = fleche_engine.measure(&mut gen, 24, BATCH);

    // --- Report -------------------------------------------------------------
    println!("{:<22} {:>14} {:>14}", "", "HugeCTR-like", "Fleche");
    println!(
        "{:<22} {:>14.0} {:>14.0}",
        "throughput (inf/s)",
        base.throughput(),
        fl.throughput()
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "median latency",
        format!("{}", base.total.median()),
        format!("{}", fl.total.median())
    );
    println!(
        "{:<22} {:>14} {:>14}",
        "p99 latency",
        format!("{}", base.total.p99()),
        format!("{}", fl.total.p99())
    );
    println!(
        "{:<22} {:>13.1}% {:>13.1}%",
        "cache hit rate",
        base.lifetime.hit_rate() * 100.0,
        fl.lifetime.hit_rate() * 100.0
    );

    // Candidates servable within the SLA: the paper's business argument.
    let per_batch_base = base.total.median().as_ms();
    let per_batch_fleche = fl.total.median().as_ms();
    let cand_base = (SLA_MS / per_batch_base * BATCH as f64) as u64;
    let cand_fleche = (SLA_MS / per_batch_fleche * BATCH as f64) as u64;
    println!(
        "{:<22} {:>14} {:>14}",
        "candidates per SLA", cand_base, cand_fleche
    );
    println!(
        "\nwithin the same {SLA_MS} ms SLA, Fleche examines {:.1}x more candidate items",
        cand_fleche as f64 / cand_base as f64
    );

    // --- Online updates under serving --------------------------------------
    // The trainer keeps pushing fresher embedding rows while the Fleche
    // server serves; mid-phase the push channel drops out (commits still
    // land in the version ledger), so resident rows age until the
    // staleness policy degrades, demotes over-bound hits, and recovers
    // once the channel returns.
    println!("\n--- online updates under serving ---");
    println!(
        "{PUSHES_PER_BATCH} trainer pushes per batch over {UPDATE_BATCHES} batches; \
         push outage at batches {}..{}\n",
        OUTAGE.start, OUTAGE.end
    );
    let mut stream = UpdateStream::new(&dataset, 0x5EED_CAFE);
    let mut hot_stats = WorkloadStats::new();
    let mut was_degraded = false;
    for b in 0..UPDATE_BATCHES {
        let batch = gen.next_batch(BATCH);
        hot_stats.observe(&batch);
        // Trainers re-embed the keys serving traffic actually touches, so
        // bias pushes toward the observed hot set — that is what creates
        // served staleness when the push channel drops.
        let hot = hot_stats.update_candidates(512, 2);
        let pushes = if hot.is_empty() {
            stream.next_burst(PUSHES_PER_BATCH)
        } else {
            stream.next_burst_from(&hot, PUSHES_PER_BATCH)
        };
        let outage = OUTAGE.contains(&b);
        {
            let (sys, gpu) = fleche_engine.system_and_gpu_mut();
            sys.commit_updates(gpu, &pushes);
            if !outage {
                sys.push_updates(gpu, &pushes);
            }
        }
        if b == OUTAGE.start {
            println!("  batch {b:>2}: push channel lost (ledger keeps committing)");
        }
        fleche_engine.run_batch(&batch);
        let degraded = fleche_engine
            .system()
            .staleness_policy()
            .is_some_and(|p| p.degraded());
        if degraded != was_degraded {
            if degraded {
                println!("  batch {b:>2}: staleness policy DEGRADED (served lag over bound)");
            } else {
                println!("  batch {b:>2}: staleness policy recovered (lag back under resume)");
            }
            was_degraded = degraded;
        }
        if b + 1 == OUTAGE.end {
            println!("  batch {b:>2}: push channel restored, catching up");
        }
    }

    let st = fleche_engine.system().staleness_stats();
    let pol = fleche_engine
        .system()
        .staleness_policy()
        .expect("staleness policy configured above");
    println!("\n{:<28} {:>12}", "staleness stats", "value");
    println!(
        "{:<28} {:>12.2}",
        "mean served lag (versions)",
        st.mean_lag()
    );
    println!("{:<28} {:>12}", "max raw lag", st.max_lag);
    println!("{:<28} {:>12}", "stale serves", st.stale_serves);
    println!("{:<28} {:>12}", "demoted over-bound hits", st.demoted);
    println!("{:<28} {:>12}", "refresh pushes", st.refreshes);
    println!("{:<28} {:>12}", "degraded batches", st.degraded_batches);
    println!("{:<28} {:>12}", "updates applied", st.updates_applied);
    println!("{:<28} {:>12}", "updates superseded", st.updates_superseded);
    println!("{:<28} {:>12}", "updates absent", st.updates_absent);
    println!(
        "{:<28} {:>12}",
        "policy entries / exits",
        format!("{} / {}", pol.entries(), pol.exits())
    );
    println!(
        "{:<28} {:>12}",
        "pending pushes at end",
        fleche_engine.system().pending_update_count()
    );
    if let Some(br) = fleche_engine.system().breaker() {
        let t = br.transitions_at(fleche_engine.gpu().now());
        println!(
            "{:<28} {:>12}",
            "gpu-path breaker opens",
            format!("{} (closed {})", t.opened, t.closed)
        );
    }
    println!(
        "\nledger is at {} commits; the policy degraded during the outage, demoted \
         over-bound hits to fresh serves, and exited once caught up",
        fleche_engine.system().ledger().commits()
    );
}
