//! Cache design explorer: ablate Fleche's techniques one at a time on one
//! workload and watch each design decision's contribution, including the
//! unified-index tuner reacting to a hotspot shift mid-run.
//!
//! Run with: `cargo run --release -p fleche-bench --example cache_explorer`

use fleche_core::{FlecheConfig, FlecheSystem};
use fleche_gpu::{DeviceSpec, DramSpec, Gpu};
use fleche_store::api::EmbeddingCacheSystem;
use fleche_store::CpuStore;
use fleche_workload::{spec, TraceGenerator};

const FRACTION: f64 = 0.05;
const BATCH: usize = 512;

fn run_variant(name: &str, config: FlecheConfig) {
    let dataset = spec::criteo_kaggle();
    let store = CpuStore::new(&dataset, DramSpec::xeon_6252());
    let mut sys = FlecheSystem::new(&dataset, store, config);
    let mut gpu = Gpu::new(DeviceSpec::t4());
    let mut gen = TraceGenerator::new(&dataset);
    for _ in 0..16 {
        sys.query_batch(&mut gpu, &gen.next_batch(BATCH));
    }
    sys.reset_stats();
    let mut wall = fleche_gpu::Ns::ZERO;
    for _ in 0..12 {
        wall += sys.query_batch(&mut gpu, &gen.next_batch(BATCH)).stats.wall;
    }
    let l = sys.lifetime_stats();
    println!(
        "{name:<28} {:>10}/batch   hit {:>5.1}%   unified hits {:>6}",
        wall / 12.0,
        l.hit_rate() * 100.0,
        l.unified_hits
    );
}

fn main() {
    println!("== ablating Fleche's techniques (Criteo-Kaggle-like, 5% cache) ==\n");
    run_variant("flat cache only", FlecheConfig::flat_cache_only(FRACTION));
    run_variant("+ kernel fusion", FlecheConfig::with_fusion(FRACTION));
    run_variant(
        "+ decoupled workflow",
        FlecheConfig::without_unified_index(FRACTION),
    );
    run_variant("+ unified index (full)", FlecheConfig::full(FRACTION));

    println!("\n== unified-index tuner under a hotspot shift ==\n");
    let dataset = spec::synthetic(16, 100_000, 32, -1.4);
    let store = CpuStore::new(&dataset, DramSpec::xeon_6252());
    let mut sys = FlecheSystem::new(&dataset, store, FlecheConfig::full(0.02));
    let mut gpu = Gpu::new(DeviceSpec::t4());
    // Shift the hot set halfway through.
    let mut gen = TraceGenerator::with_drift(&dataset, Some(40 * BATCH as u64));
    for i in 0..80 {
        let s = sys.query_batch(&mut gpu, &gen.next_batch(BATCH)).stats;
        if i % 10 == 9 {
            println!(
                "batch {:>3}: wall {:>10}  hit {:>5.1}%  tuner target {:>6} ({:?}, {} resets)",
                i + 1,
                s.wall,
                s.hit_rate() * 100.0,
                sys.tuner().target(),
                sys.tuner().state(),
                sys.tuner().resets()
            );
        }
    }
}
