//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors the
//! subset of proptest's API that the integration tests use: the `proptest!`
//! macro with `#![proptest_config]`, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, `prop_oneof!`, `any::<bool>()`, `Strategy::prop_map` /
//! `boxed`, `prop::collection::vec`, and `prop::sample::select`.
//!
//! Semantics differ from real proptest in one deliberate way: there is **no
//! shrinking**. A failing case panics with the generated inputs printed, which
//! is enough to reproduce (generation is fully deterministic — the RNG stream
//! is derived from the test's module path and name, never from wall-clock
//! entropy).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner configuration and case outcomes.
pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of accepted (non-rejected) cases to execute per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; carries the rendered message.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic generator backing all strategies (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// A generator whose stream depends only on `seed`.
        pub fn deterministic(seed: u64) -> TestRng {
            let mut state = seed;
            TestRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform draw from `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Stable fingerprint of a test name, used to seed its RNG stream.
    pub fn fingerprint(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use core::fmt;
    use core::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value: fmt::Debug;

        /// Draws one value from `rng`.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Type-erases this strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// A type-erased strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0.new_value(rng)
        }
    }

    /// Uniform choice between several boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T: fmt::Debug> Union<T> {
        /// Builds a union over `arms`; panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].new_value(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let draw = (rng.next_u64() as u128) % span;
                    (self.start as u128 + draw) as $t
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// Generates `true` / `false` uniformly (the `any::<bool>()` strategy).
    #[derive(Clone, Copy, Debug)]
    pub struct BoolStrategy;

    impl Strategy for BoolStrategy {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($s,)+) = self;
                    ($($s.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::fmt;
    use core::ops::{Range, RangeInclusive};

    /// A half-open range of collection sizes.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max_excl: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_excl - self.size.min) as u64;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::fmt;

    /// Uniformly selects one of the given options.
    pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    /// See [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone + fmt::Debug> Strategy for Select<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].clone()
        }
    }
}

/// The `any::<T>()` entry point.
pub mod arbitrary {
    use crate::strategy::{BoolStrategy, Strategy};
    use core::fmt;
    use core::ops::Range;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized + fmt::Debug {
        /// Strategy type produced by [`any`].
        type Strategy: Strategy<Value = Self>;
        /// The canonical strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }

    impl Arbitrary for bool {
        type Strategy = BoolStrategy;
        fn arbitrary() -> BoolStrategy {
            BoolStrategy
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = Range<$t>;
                fn arbitrary() -> Range<$t> {
                    0..<$t>::MAX
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);
}

/// Everything a proptest-style test file imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Module namespace mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests. Each `fn` inside the block becomes a `#[test]`
/// that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let strategies = ($($strat,)+);
            let mut rng = $crate::test_runner::TestRng::deterministic(
                $crate::test_runner::fingerprint(concat!(module_path!(), "::", stringify!($name))),
            );
            let mut executed: u32 = 0;
            let mut attempts: u32 = 0;
            while executed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(64).max(4096),
                    "proptest: too many rejected cases in {}",
                    stringify!($name),
                );
                let ($(ref $arg,)+) = strategies;
                $(let $arg = $crate::strategy::Strategy::new_value($arg, &mut rng);)+
                let case_desc = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => executed += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {}\n  minimal repro inputs: {}",
                            msg, case_desc
                        );
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property test, failing the case (not the
/// whole process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left,
                            right
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (left, right) => {
                if !(*left == *right) {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+),
                            left,
                            right
                        ),
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (left, right) => {
                if *left == *right {
                    return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        format!(
                            "assertion failed: `{} != {}`\n  both: {:?}",
                            stringify!($left),
                            stringify!($right),
                            left
                        ),
                    ));
                }
            }
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec((0u16..4, 0u64..500), 1..20);
        let a: Vec<_> = {
            let mut rng = TestRng::deterministic(11);
            (0..8).map(|_| strat.new_value(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = TestRng::deterministic(11);
            (0..8).map(|_| strat.new_value(&mut rng)).collect()
        };
        assert_eq!(a, b);
        for v in &a {
            assert!(!v.is_empty() && v.len() < 20);
            for &(t, id) in v {
                assert!(t < 4 && id < 500);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_in_range(x in 3u64..17, p in 0.25f64..0.75, flag in any::<bool>()) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.25..0.75).contains(&p));
            prop_assume!(x >= 3 || flag);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x + 1, x);
        }

        #[test]
        fn oneof_and_select_cover_arms(
            v in prop_oneof![
                (0u32..10).prop_map(|x| x as u64),
                (100u64..110).prop_map(|x| x),
            ],
            pick in prop::sample::select(vec![4u32, 8, 16, 32]),
        ) {
            prop_assert!(v < 10 || (100..110).contains(&v));
            prop_assert!([4u32, 8, 16, 32].contains(&pick));
        }
    }
}
