//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! tiny timing harness exposing the API surface `benches/micro.rs` and
//! `benches/systems.rs` use. It runs each benchmark long enough to print a
//! stable-ish mean wall time per iteration, with none of criterion's
//! statistics, plotting, or baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use core::hint::black_box;

/// Rough target wall time per benchmark (after warmup).
const TARGET: Duration = Duration::from_millis(200);

/// Times one benchmark body.
pub struct Bencher {
    per_iter: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean time per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup: one call, also used to size the timed batch.
        let t0 = Instant::now();
        black_box(f());
        let first = t0.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / first.as_nanos()).clamp(1, 100_000) as u64;
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.per_iter = t0.elapsed() / iters as u32;
        self.iters = iters;
    }
}

/// Throughput annotation attached to a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id that is just a parameter value.
    pub fn from_parameter(param: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

/// Measured outcome of one benchmark, retrievable from
/// [`Criterion::results`] by custom `main`s that post-process timings
/// (e.g. emitting machine-readable JSON next to the printed table).
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Full label (`group/id` for grouped benchmarks).
    pub label: String,
    /// Mean wall time per iteration, nanoseconds.
    pub per_iter_ns: f64,
    /// Timed iterations behind the mean.
    pub iters: u64,
    /// The group's throughput annotation, if any.
    pub throughput: Option<Throughput>,
}

impl BenchResult {
    /// Elements or bytes processed per second, when annotated.
    pub fn rate_per_sec(&self) -> Option<f64> {
        match self.throughput {
            Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
                Some(n as f64 / self.per_iter_ns * 1e9)
            }
            None => None,
        }
    }
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let r = run_one(name, None, f);
        self.results.push(r);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            throughput: None,
        }
    }

    /// Every result measured through this driver, in run order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to report rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let r = run_one(&format!("{}/{}", self.name, id.id), self.throughput, f);
        self.parent.results.push(r);
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) -> BenchResult {
    let mut b = Bencher {
        per_iter: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter = b.per_iter.as_nanos().max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.1} Melem/s)", n as f64 / per_iter * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.2} GB/s)", n as f64 / per_iter)
        }
        None => String::new(),
    };
    println!(
        "{label:<48} time: {:>12} / iter  [{} iters]{rate}",
        format_ns(per_iter),
        b.iters
    );
    BenchResult {
        label: label.to_string(),
        per_iter_ns: per_iter,
        iters: b.iters,
        throughput,
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(10));
        g.bench_with_input(BenchmarkId::new("f", 4), &4u32, |b, &n| {
            b.iter(|| black_box(n * 2));
        });
        g.finish();
        assert_eq!(c.results().len(), 1);
        let r = &c.results()[0];
        assert_eq!(r.label, "g/f/4");
        assert!(r.per_iter_ns > 0.0);
        assert!(r.iters > 0);
        assert!(r.rate_per_sec().expect("annotated") > 0.0);
    }
}
