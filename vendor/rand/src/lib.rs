//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors the
//! small slice of the rand 0.8 API it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen`, `gen_range`,
//! and `gen_bool`. The generator is xoshiro256** seeded through splitmix64 —
//! statistically solid for the simulator's sampling needs, with no claim to
//! cryptographic strength (the real `StdRng` makes no stability claim across
//! versions either, so tests must not depend on exact streams).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::ops::Range;

/// A random-number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw output.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value uniformly from `[low, high)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                // Multiply-shift rejection-free mapping is fine here: spans in
                // this workspace are tiny relative to 2^64, so modulo bias is
                // far below anything the statistical tests can resolve.
                let draw = rng.next_u64() as u128 % span;
                (low as u128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// The subset of rand 0.8's `Rng` this workspace needs.
///
/// All provided methods stay callable through `R: Rng + ?Sized` borrows, which
/// is how `fleche-workload`'s samplers take their generator.
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from the half-open `range`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns true with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256** generator, seeded via splitmix64.
    ///
    /// Named `StdRng` to match the rand 0.8 import paths used across the
    /// workspace.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_is_uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 8];
        for _ in 0..8_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (700..1300).contains(&c),
                "bucket {i} count {c} outside expectation"
            );
        }
    }

    #[test]
    fn works_through_unsized_borrow() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0usize..10)
        }
        let mut rng = StdRng::seed_from_u64(3);
        let v = draw(&mut rng);
        assert!(v < 10);
    }
}
